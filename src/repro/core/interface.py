"""The backend protocol every HyperModel database must implement.

The paper specifies its operations "at a conceptual level, suitable for
transformation to different actual database management systems".  This
module is that transformation seam: :class:`HyperModelDatabase` is the
abstract navigational interface the generator (section 5.2), the
operations (section 6) and the harness all run against, and each
backend (in-memory, relational, OODB, client/server) implements.

Node references are opaque.  The paper is explicit that inputs and
outputs of operations are *references* — key values in a relational
system, object identifiers in an object-oriented one — never copies of
nodes, and that a returned list of references must itself be storable
in the database.  The interface mirrors this with ``NodeRef = Any``
plus :meth:`store_node_list` / :meth:`load_node_list`.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmap import Bitmap
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.obs import NO_OP, Instrumentation

#: An opaque, backend-specific node reference (key value or object id).
NodeRef = Any


class HyperModelDatabase(abc.ABC):
    """Abstract navigational interface to one HyperModel database.

    Lifecycle: a backend is constructed closed; :meth:`open` makes it
    usable, :meth:`close` flushes and releases it (and, per section
    5.3(e), drops any cache so the next open starts cold).  Mutations
    become durable at :meth:`commit`.

    Backends are also context managers::

        with create_backend("memory") as db:
            ...            # opened on entry
        # closed on exit; aborted first if the block raised

    and each carries an :attr:`instrumentation` handle (the no-op
    singleton unless one was supplied at construction) whose counters
    the harness snapshots around every cold/warm run.
    """

    #: The measurement handle; backends overwrite this in ``__init__``
    #: with whatever :func:`repro.obs.resolve` gives them.
    instrumentation: Instrumentation = NO_OP

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def open(self) -> None:
        """Open the database, making operations available."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush, release resources and drop caches (section 5.3(e))."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Make all changes since the last commit durable."""

    def abort(self) -> None:
        """Discard uncommitted changes.  Optional; default is a no-op
        for backends without transaction support."""

    @property
    @abc.abstractmethod
    def is_open(self) -> bool:
        """Whether the database is currently open."""

    def __enter__(self) -> "HyperModelDatabase":
        """Open the database (if closed) and return it."""
        if not self.is_open:
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close on exit; abort uncommitted work first if the block raised.

        The clean path relies on :meth:`close` flushing committed work
        (every backend's close implies a final commit of pending
        writes); the exception path calls :meth:`abort` first so a
        failed block's half-done mutations are discarded, honouring the
        "abort-on-exception" contract.
        """
        try:
            if exc_type is not None and self.is_open:
                self.abort()
        finally:
            if self.is_open:
                self.close()
        return False

    @property
    def supports_object_identity(self) -> bool:
        """Whether op 02 (lookup by object id) is distinct from op 01.

        Relational backends return ``False``: their only node reference
        is the key value, so the paper's "if applicable" clause excuses
        them from the OID-lookup measurement.
        """
        return True

    # ------------------------------------------------------------------
    # Creation (used by the generator; timed by the creation benchmark)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def create_node(self, data: NodeData) -> NodeRef:
        """Create a node with the given attributes; return its reference."""

    @abc.abstractmethod
    def add_child(self, parent: NodeRef, child: NodeRef) -> None:
        """Append ``child`` to the *ordered* 1-N children of ``parent``."""

    @abc.abstractmethod
    def add_part(self, whole: NodeRef, part: NodeRef) -> None:
        """Add ``part`` to the unordered M-N parts of ``whole``."""

    @abc.abstractmethod
    def add_reference(
        self, source: NodeRef, target: NodeRef, attrs: LinkAttributes
    ) -> None:
        """Create an attributed refTo link from ``source`` to ``target``."""

    # ------------------------------------------------------------------
    # Identity and attributes (ops 01/02)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def lookup(self, unique_id: int) -> NodeRef:
        """Resolve a ``uniqueId`` key to a node reference (op 01 path).

        Raises:
            NodeNotFoundError: if no node has that uniqueId.
        """

    @abc.abstractmethod
    def get_attribute(self, ref: NodeRef, name: str) -> int:
        """Read one of the integer attributes of a node by reference."""

    @abc.abstractmethod
    def set_attribute(self, ref: NodeRef, name: str, value: int) -> None:
        """Write one of the integer attributes of a node (op 12)."""

    @abc.abstractmethod
    def kind_of(self, ref: NodeRef) -> NodeKind:
        """Return which class of the generalization hierarchy a node is."""

    @abc.abstractmethod
    def structure_of(self, ref: NodeRef) -> int:
        """Return which test structure a node belongs to."""

    # ------------------------------------------------------------------
    # Range lookups (ops 03/04)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def range_hundred(self, low: int, high: int) -> List[NodeRef]:
        """Nodes whose ``hundred`` is in the inclusive range (op 03)."""

    @abc.abstractmethod
    def range_million(self, low: int, high: int) -> List[NodeRef]:
        """Nodes whose ``million`` is in the inclusive range (op 04)."""

    # ------------------------------------------------------------------
    # Group lookups — forward traversal (ops 05A/05B/06)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def children(self, ref: NodeRef) -> List[NodeRef]:
        """The ordered children of a node via the 1-N aggregation."""

    @abc.abstractmethod
    def parts(self, ref: NodeRef) -> List[NodeRef]:
        """The parts of a node via the M-N aggregation (unordered)."""

    @abc.abstractmethod
    def refs_to(self, ref: NodeRef) -> List[Tuple[NodeRef, LinkAttributes]]:
        """Outgoing attributed references with their offsets (op 06)."""

    # ------------------------------------------------------------------
    # Batched navigation (frontier traversal; see docs/performance.md)
    # ------------------------------------------------------------------
    #
    # The closure operations (ops 10-15/18) traverse one *frontier* of
    # nodes at a time.  Issued per node, a frontier costs one backend
    # interaction per member — N simulated round trips on the
    # client/server backend, N un-clustered store reads on the paged
    # engine.  The ``*_many`` methods let a backend answer a whole
    # frontier in one interaction (one ``IN (...)`` query, one batch
    # RPC, one page-ordered prefetch).
    #
    # Contract, shared by every implementation:
    #
    # * results align 1:1 with ``refs`` — element *i* is exactly what
    #   the corresponding per-item method would return for ``refs[i]``,
    #   including order within each element;
    # * duplicate refs are answered per occurrence (the *query* may be
    #   deduplicated, the result must not be);
    # * an empty ``refs`` returns an empty list without touching the
    #   backend;
    # * unknown refs raise exactly what the per-item method raises.
    #
    # The defaults below fall back to per-item calls so third-party
    # backends keep working unchanged; built-in backends override them
    # natively and count ``backend.batch.calls`` / ``backend.batch.items``.

    def children_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        """Ordered 1-N children for each of ``refs`` (aligned)."""
        return [self.children(ref) for ref in refs]

    def parts_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        """M-N parts for each of ``refs`` (aligned)."""
        return [self.parts(ref) for ref in refs]

    def refs_to_many(
        self, refs: Sequence[NodeRef]
    ) -> List[List[Tuple[NodeRef, LinkAttributes]]]:
        """Outgoing attributed references for each of ``refs`` (aligned)."""
        return [self.refs_to(ref) for ref in refs]

    def get_attributes_many(
        self, refs: Sequence[NodeRef], name: str
    ) -> List[int]:
        """One integer attribute read for each of ``refs`` (aligned)."""
        return [self.get_attribute(ref, name) for ref in refs]

    def prefetch_closure(
        self,
        root: NodeRef,
        relation: str,
        depth: Optional[int] = None,
    ) -> bool:
        """Hint that a closure over ``relation`` from ``root`` follows.

        ``relation`` is one of ``"children"``, ``"parts"`` or
        ``"refTo"``; ``depth`` bounds the traversal (``None`` =
        unbounded).  A backend that can warm the reachable set cheaply
        — e.g. by pushing the whole traversal down to a remote server
        in one request — may do so and return ``True``; the default
        does nothing and returns ``False``.  Purely an optimization
        hint: callers must behave identically either way, because the
        subsequent per-item/batched reads define the result.
        """
        return False

    # ------------------------------------------------------------------
    # Reference lookups — inverse traversal (ops 07A/07B/08)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def parent(self, ref: NodeRef) -> Optional[NodeRef]:
        """The 1-N parent of a node, or ``None`` for the root (op 07A)."""

    @abc.abstractmethod
    def part_of(self, ref: NodeRef) -> List[NodeRef]:
        """The composites this node is a part of via M-N (op 07B)."""

    @abc.abstractmethod
    def refs_from(self, ref: NodeRef) -> List[NodeRef]:
        """Nodes that reference this node (possibly empty; op 08)."""

    # ------------------------------------------------------------------
    # Sequential scan (op 09)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def scan_ten(self, structure_id: int = 1) -> int:
        """Visit every node of one test structure, reading its ``ten``.

        Returns the number of nodes visited.  The paper forbids using
        the global class extent (a second copy of the structure may
        coexist), so backends must filter on the structure tag.
        """

    @abc.abstractmethod
    def iter_nodes(self, structure_id: int = 1) -> Iterator[NodeRef]:
        """Iterate references to every node of one test structure.

        Used by verification and the ad-hoc query executor, not by the
        timed benchmark operations.
        """

    # ------------------------------------------------------------------
    # Content access (ops 16/17)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def get_text(self, ref: NodeRef) -> str:
        """Return the body of a text node."""

    @abc.abstractmethod
    def set_text(self, ref: NodeRef, text: str) -> None:
        """Replace the body of a text node (size may change; op 16)."""

    @abc.abstractmethod
    def get_bitmap(self, ref: NodeRef) -> Bitmap:
        """Return the bitmap of a form node."""

    @abc.abstractmethod
    def set_bitmap(self, ref: NodeRef, bitmap: Bitmap) -> None:
        """Replace the bitmap of a form node (op 17)."""

    # ------------------------------------------------------------------
    # Result-list storage (section 6 preamble)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def store_node_list(self, name: str, refs: Sequence[NodeRef]) -> None:
        """Persist a named list of node references in the database.

        The paper requires that a list returned from an operation "should
        itself be storable in the database" (e.g. as a table of
        contents); closure benchmarks exercise this.
        """

    @abc.abstractmethod
    def load_node_list(self, name: str) -> List[NodeRef]:
        """Load a previously stored named list of node references."""

    # ------------------------------------------------------------------
    # Introspection for the harness
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def node_count(self, structure_id: int = 1) -> int:
        """Number of nodes in one test structure."""

    @property
    def backend_name(self) -> str:
        """Short human-readable backend identifier for reports."""
        return type(self).__name__
