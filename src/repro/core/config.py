"""Benchmark configuration and the sizing formulas of section 5.2.

The paper fixes a fan-out of five and leaf levels of 4, 5 or 6, but its
N.B. explicitly demands that levels, fan-outs and content sizes be
*parameters*, not constants baked into schema or operations.  This
module captures the whole parameter space in one immutable
:class:`HyperModelConfig` and provides the closed-form node-count and
byte-size formulas the paper quotes (19 531 nodes and roughly 8 MB at
level 6; one more level multiplies both by five).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Total node counts the paper quotes for each leaf level with fan-out 5.
LEVEL_NODE_COUNTS: Dict[int, int] = {4: 781, 5: 3906, 6: 19531, 7: 97656}

#: Approximate byte sizes from section 5.2, used by the size model.
BYTES_PER_NODE = 80
BYTES_PER_TEXT_NODE = 380
BYTES_PER_FORM_NODE = 7800
BYTES_PER_LINK = 25


@dataclasses.dataclass(frozen=True)
class HyperModelConfig:
    """All generation parameters of the HyperModel test database.

    The defaults reproduce the paper's level-4 database (the smallest
    of the three sizes); pass ``levels=5`` or ``levels=6`` for the
    larger ones.

    Attributes:
        levels: level of the leaves in the 1-N hierarchy (root is 0).
        fanout: children per internal node in the 1-N hierarchy.
        parts_per_node: M-N parts drawn per internal node (paper: 5).
        text_nodes_per_form_node: leaf mix ratio (paper: 125).
        min_words / max_words: words per text node (paper: 10-100).
        min_word_length / max_word_length: characters per word (1-10).
        min_bitmap_dim / max_bitmap_dim: square-ish bitmap side range
            in pixels (paper: 100-400).
        max_offset: exclusive upper bound of link offsets (paper: 0-9,
            so ``max_offset=10``).
        closure_depth: run-time depth bound for the M-N-attribute
            closure operations (paper: 25).
        seed: seed of the uniform PRNG used for every random draw.
    """

    levels: int = 4
    fanout: int = 5
    parts_per_node: int = 5
    text_nodes_per_form_node: int = 125
    min_words: int = 10
    max_words: int = 100
    min_word_length: int = 1
    max_word_length: int = 10
    min_bitmap_dim: int = 100
    max_bitmap_dim: int = 400
    max_offset: int = 10
    closure_depth: int = 25
    seed: int = 19880301

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ConfigurationError("levels must be >= 1")
        if self.fanout < 1:
            raise ConfigurationError("fanout must be >= 1")
        if self.parts_per_node < 0:
            raise ConfigurationError("parts_per_node must be >= 0")
        if self.text_nodes_per_form_node < 1:
            raise ConfigurationError("text_nodes_per_form_node must be >= 1")
        if not (0 < self.min_words <= self.max_words):
            raise ConfigurationError("need 0 < min_words <= max_words")
        if not (0 < self.min_word_length <= self.max_word_length):
            raise ConfigurationError("need 0 < min_word_length <= max_word_length")
        if not (0 < self.min_bitmap_dim <= self.max_bitmap_dim):
            raise ConfigurationError("need 0 < min_bitmap_dim <= max_bitmap_dim")
        if self.max_offset < 1:
            raise ConfigurationError("max_offset must be >= 1")
        if self.closure_depth < 1:
            raise ConfigurationError("closure_depth must be >= 1")

    # ------------------------------------------------------------------
    # Counting formulas (section 5.2)
    # ------------------------------------------------------------------

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at ``level`` (root = level 0)."""
        if not 0 <= level <= self.levels:
            raise ConfigurationError(
                f"level {level} outside 0..{self.levels}"
            )
        return self.fanout**level

    @property
    def total_nodes(self) -> int:
        """Total node count: 1 + f + f^2 + ... + f^levels."""
        if self.fanout == 1:
            return self.levels + 1
        return (self.fanout ** (self.levels + 1) - 1) // (self.fanout - 1)

    @property
    def internal_nodes(self) -> int:
        """Nodes with children: every node except the leaves."""
        return self.total_nodes - self.leaf_nodes

    @property
    def leaf_nodes(self) -> int:
        """Nodes at the leaf level of the 1-N hierarchy."""
        return self.nodes_at_level(self.levels)

    @property
    def form_node_count(self) -> int:
        """Form nodes among the leaves (one per ratio of text nodes).

        The paper's level-6 database has 15 625 leaves split into
        15 500 text nodes and 125 form nodes, i.e. the leaf population
        divided by ``text_nodes_per_form_node``.
        """
        return self.leaf_nodes // self.text_nodes_per_form_node

    @property
    def text_node_count(self) -> int:
        """Text nodes among the leaves."""
        return self.leaf_nodes - self.form_node_count

    @property
    def one_n_relationship_count(self) -> int:
        """1-N parent/child edges: one per node except the root."""
        return self.total_nodes - 1

    @property
    def m_n_relationship_count(self) -> int:
        """M-N part edges: ``parts_per_node`` per internal node."""
        return self.internal_nodes * self.parts_per_node

    @property
    def m_n_att_relationship_count(self) -> int:
        """Attributed M-N edges: exactly one per node."""
        return self.total_nodes

    def closure_1n_size(self, start_level: int = 3) -> int:
        """Nodes reached by a 1-N closure from a ``start_level`` node.

        The paper quotes 6, 31 and 156 for levels 4, 5 and 6 with the
        default start level of three.
        """
        depth = self.levels - start_level
        if depth < 0:
            raise ConfigurationError(
                f"start level {start_level} is below the leaves"
            )
        if self.fanout == 1:
            return depth + 1
        return (self.fanout ** (depth + 1) - 1) // (self.fanout - 1)

    # ------------------------------------------------------------------
    # Size model (section 5.2's ~8 MB estimate)
    # ------------------------------------------------------------------

    def estimated_size_bytes(self) -> int:
        """Approximate database size using the paper's per-item bytes.

        Every node costs 80 bytes, text nodes a further 300 (380
        total), form nodes a further 7 720 (7 800 total), and each
        relationship instance 25 bytes.  The level-6 figure comes out
        at roughly 8 MB, exactly as the paper states.
        """
        links = (
            self.one_n_relationship_count
            + self.m_n_relationship_count
            + self.m_n_att_relationship_count
        )
        return (
            self.total_nodes * BYTES_PER_NODE
            + self.text_node_count * (BYTES_PER_TEXT_NODE - BYTES_PER_NODE)
            + self.form_node_count * (BYTES_PER_FORM_NODE - BYTES_PER_NODE)
            + links * BYTES_PER_LINK
        )

    # ------------------------------------------------------------------
    # Attribute domains (section 5.1 instance diagram)
    # ------------------------------------------------------------------

    @property
    def ten_range(self) -> Tuple[int, int]:
        """Inclusive domain of the ``ten`` attribute."""
        return (1, 10)

    @property
    def hundred_range(self) -> Tuple[int, int]:
        """Inclusive domain of the ``hundred`` attribute."""
        return (1, 100)

    @property
    def million_range(self) -> Tuple[int, int]:
        """Inclusive domain of the ``million`` attribute."""
        return (1, 1_000_000)

    def with_levels(self, levels: int) -> "HyperModelConfig":
        """Return a copy of this configuration at a different level."""
        return dataclasses.replace(self, levels=levels)

    def with_seed(self, seed: int) -> "HyperModelConfig":
        """Return a copy of this configuration with a different seed."""
        return dataclasses.replace(self, seed=seed)
