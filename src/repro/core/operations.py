"""The twenty HyperModel benchmark operations (section 6).

Every operation is expressed *navigationally* against the abstract
:class:`~repro.core.interface.HyperModelDatabase`, exactly as the paper
specifies them: group and reference lookups follow one relationship
step, closure operations recurse over relationship steps, and the
editing operations retrieve, modify and store a node's content.

:class:`Operations` holds the callable implementations;
:class:`OperationCatalog` wraps each one in an :class:`OperationSpec`
that also knows how to draw a valid random *input* (from the generator
metadata, never from inside the operation — the paper's N.B. forbids
operations from exploiting structural knowledge) and how many nodes a
result represents (for the paper's milliseconds-per-node
normalization).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import HyperModelConfig
from repro.core.generator import GeneratedDatabase
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.text import VERSION_1, edit_text_backward, edit_text_forward


class Operations:
    """Implementations of ops 01-18 over one open backend."""

    def __init__(
        self, db: HyperModelDatabase, config: Optional[HyperModelConfig] = None
    ) -> None:
        self.db = db
        self.config = config or HyperModelConfig()

    # ------------------------------------------------------------------
    # 6.1 Name lookup
    # ------------------------------------------------------------------

    def name_lookup(self, unique_id: int) -> int:
        """Op 01: resolve a uniqueId key, return the node's ``hundred``."""
        ref = self.db.lookup(unique_id)
        return self.db.get_attribute(ref, "hundred")

    def name_oid_lookup(self, ref: NodeRef) -> int:
        """Op 02: given an object reference, return its ``hundred``."""
        return self.db.get_attribute(ref, "hundred")

    # ------------------------------------------------------------------
    # 6.2 Range lookup
    # ------------------------------------------------------------------

    def range_lookup_hundred(self, x: int) -> List[NodeRef]:
        """Op 03: nodes with ``hundred`` in x..x+9 (10% selectivity)."""
        return self.db.range_hundred(x, x + 9)

    def range_lookup_million(self, x: int) -> List[NodeRef]:
        """Op 04: nodes with ``million`` in x..x+9999 (1% selectivity)."""
        return self.db.range_million(x, x + 9999)

    # ------------------------------------------------------------------
    # 6.3 Group lookup (forward, one step)
    # ------------------------------------------------------------------

    def group_lookup_1n(self, ref: NodeRef) -> List[NodeRef]:
        """Op 05A: the *ordered* children of an internal node."""
        return self.db.children(ref)

    def group_lookup_mn(self, ref: NodeRef) -> List[NodeRef]:
        """Op 05B: the parts of an internal node (a set)."""
        return self.db.parts(ref)

    def group_lookup_mnatt(self, ref: NodeRef) -> List[NodeRef]:
        """Op 06: the node referenced via the attributed M-N relation."""
        return [target for target, _attrs in self.db.refs_to(ref)]

    # ------------------------------------------------------------------
    # 6.4 Reference lookup (inverse, one step)
    # ------------------------------------------------------------------

    def ref_lookup_1n(self, ref: NodeRef) -> List[NodeRef]:
        """Op 07A: the parent of a non-root node (a one-element set)."""
        parent = self.db.parent(ref)
        return [] if parent is None else [parent]

    def ref_lookup_mn(self, ref: NodeRef) -> List[NodeRef]:
        """Op 07B: the composites a node is part of."""
        return self.db.part_of(ref)

    def ref_lookup_mnatt(self, ref: NodeRef) -> List[NodeRef]:
        """Op 08: the nodes referencing this node (possibly empty)."""
        return self.db.refs_from(ref)

    # ------------------------------------------------------------------
    # 6.4.1 Sequential scan
    # ------------------------------------------------------------------

    def seq_scan(self, structure_id: int = 1) -> int:
        """Op 09: visit every node of the structure reading ``ten``."""
        return self.db.scan_ten(structure_id)

    # ------------------------------------------------------------------
    # 6.5 Closure traversals
    #
    # Every closure is evaluated level-at-a-time over the batched
    # navigation API (``children_many`` / ``parts_many`` /
    # ``refs_to_many`` / ``get_attributes_many``): a whole BFS frontier
    # is resolved in one backend interaction, so the number of backend
    # calls — and, on the client/server backend, network round trips —
    # is O(tree depth) instead of O(nodes).  The *results* are emitted
    # exactly as the paper specifies them: the adjacency collected
    # during the BFS is replayed through the original depth-first
    # recursion in memory, so pre-order (op 10/13) and per-path visit
    # counts (op 14) are byte-identical to the per-item formulation.
    # ------------------------------------------------------------------

    def _collect_children(self, ref: NodeRef) -> Dict[NodeRef, List[NodeRef]]:
        """BFS the 1-N subtree below ``ref``; return the adjacency map.

        One ``children_many`` call per tree level.  The 1-N relation is
        a tree, so every node appears in exactly one frontier.

        A backend that supports closure push-down
        (:meth:`~repro.core.interface.HyperModelDatabase.prefetch_closure`)
        warms its cache with the whole subtree first, collapsing the
        per-level interactions to local hits — the loop below is
        unchanged either way, so results cannot diverge.
        """
        self.db.prefetch_closure(ref, "children")
        children_of: Dict[NodeRef, List[NodeRef]] = {}
        frontier: List[NodeRef] = [ref]
        while frontier:
            batches = self.db.children_many(frontier)
            next_frontier: List[NodeRef] = []
            for node, kids in zip(frontier, batches):
                children_of[node] = kids
                next_frontier.extend(kids)
            frontier = next_frontier
        return children_of

    def closure_1n(self, ref: NodeRef) -> List[NodeRef]:
        """Op 10: pre-order list of the 1-N subtree below ``ref``.

        Child order is preserved at every level, so the result is
        usable as a table of contents; the harness stores it back into
        the database as the paper requires.  The subtree is fetched
        level-at-a-time (one batch call per level) and the pre-order is
        produced by an in-memory replay of the depth-first walk.
        """
        children_of = self._collect_children(ref)
        result: List[NodeRef] = []
        stack = [ref]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(children_of[node]))
        return result

    def closure_mn(self, ref: NodeRef) -> List[NodeRef]:
        """Op 14: all nodes reachable through the M-N parts relation.

        The M-N structure is a DAG (parts always point one level
        down), and shared sub-parts are visited once per path, matching
        the paper's per-level node counts (6 / 31 / 156).  Each
        *distinct* node's part list is fetched once (one ``parts_many``
        per DAG level); the per-path expansion is replayed in memory.
        """
        self.db.prefetch_closure(ref, "parts")
        parts_of: Dict[NodeRef, List[NodeRef]] = {}
        frontier: List[NodeRef] = [ref]
        while frontier:
            batches = self.db.parts_many(frontier)
            seen_next: List[NodeRef] = []
            for node, parts in zip(frontier, batches):
                parts_of[node] = parts
                for part in parts:
                    if part not in parts_of and part not in seen_next:
                        seen_next.append(part)
            frontier = seen_next
        result: List[NodeRef] = []
        stack = [ref]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(parts_of[node])
        return result

    def closure_mnatt(self, ref: NodeRef, depth: Optional[int] = None) -> List[NodeRef]:
        """Op 15: follow the attributed M-N relation to a given depth.

        Every node has exactly one outgoing reference and no
        terminating condition exists, so the traversal is bounded by
        ``depth`` (run-time parameter; the paper uses 25).  The start
        node itself is not part of the output.  Each depth step is one
        ``refs_to_many`` call over the whole frontier.
        """
        limit = self.config.closure_depth if depth is None else depth
        self.db.prefetch_closure(ref, "refTo", depth=limit)
        result: List[NodeRef] = []
        frontier = [ref]
        for _ in range(limit):
            next_frontier: List[NodeRef] = []
            for targets in self.db.refs_to_many(frontier):
                for target, _attrs in targets:
                    result.append(target)
                    next_frontier.append(target)
            if not next_frontier:
                break
            frontier = next_frontier
        return result

    # ------------------------------------------------------------------
    # 6.6 Other closure operations
    # ------------------------------------------------------------------

    def closure_1n_att_sum(self, ref: NodeRef) -> int:
        """Op 11: sum of ``hundred`` over the 1-N subtree below ``ref``.

        One ``children_many`` plus one ``get_attributes_many`` call per
        tree level; addition commutes, so no replay pass is needed.
        """
        self.db.prefetch_closure(ref, "children")
        total = 0
        frontier: List[NodeRef] = [ref]
        while frontier:
            for value in self.db.get_attributes_many(frontier, "hundred"):
                total += value
            next_frontier: List[NodeRef] = []
            for kids in self.db.children_many(frontier):
                next_frontier.extend(kids)
            frontier = next_frontier
        return total

    def closure_1n_att_set(self, ref: NodeRef) -> int:
        """Op 12: set ``hundred`` to 99 minus its value over the subtree.

        Applying the operation twice restores the original values, so
        the benchmark leaves the database unchanged after its paired
        cold/warm runs.  Returns the number of nodes updated.  Reads
        are batched per level; the writes stay per-node (the update
        path has no batch verb — the paper times the read-modify-write
        loop as given).
        """
        self.db.prefetch_closure(ref, "children")
        count = 0
        frontier: List[NodeRef] = [ref]
        while frontier:
            values = self.db.get_attributes_many(frontier, "hundred")
            for node, value in zip(frontier, values):
                self.db.set_attribute(node, "hundred", 99 - value)
                count += 1
            next_frontier: List[NodeRef] = []
            for kids in self.db.children_many(frontier):
                next_frontier.extend(kids)
            frontier = next_frontier
        return count

    def closure_1n_pred(self, ref: NodeRef, x: int) -> List[NodeRef]:
        """Op 13: 1-N closure pruned by a ``million`` range predicate.

        Nodes whose ``million`` lies in x..x+9999 are excluded *and*
        terminate the recursion below them; all other reachable nodes
        are returned.  Each level batches the predicate reads and only
        the surviving nodes' children are ever fetched, mirroring the
        per-item formulation (pruned subtrees cost nothing).
        """
        low, high = x, x + 9999
        # Push-down note: the hint ships the *whole* subtree even
        # though pruned branches are never read back — trading payload
        # for the single round trip.  The per-level fall-back keeps the
        # pruned-subtrees-cost-nothing property.
        self.db.prefetch_closure(ref, "children")
        pruned: Dict[NodeRef, bool] = {}
        children_of: Dict[NodeRef, List[NodeRef]] = {}
        frontier: List[NodeRef] = [ref]
        while frontier:
            values = self.db.get_attributes_many(frontier, "million")
            passing: List[NodeRef] = []
            for node, value in zip(frontier, values):
                is_pruned = low <= value <= high
                pruned[node] = is_pruned
                if not is_pruned:
                    passing.append(node)
            next_frontier: List[NodeRef] = []
            for node, kids in zip(passing, self.db.children_many(passing)):
                children_of[node] = kids
                next_frontier.extend(kids)
            frontier = next_frontier
        result: List[NodeRef] = []
        stack = [ref]
        while stack:
            node = stack.pop()
            if pruned[node]:
                continue
            result.append(node)
            stack.extend(reversed(children_of[node]))
        return result

    def closure_mnatt_linksum(
        self, ref: NodeRef, depth: Optional[int] = None
    ) -> List[Tuple[NodeRef, int]]:
        """Op 18: nodes reached via refTo with cumulative offsetTo distance.

        Returns (node, distance) pairs where distance is the sum of the
        ``offsetTo`` weights along the path from the start node, to the
        run-time depth (25 by default).  Each depth step resolves the
        whole frontier with one ``refs_to_many`` call.
        """
        limit = self.config.closure_depth if depth is None else depth
        self.db.prefetch_closure(ref, "refTo", depth=limit)
        result: List[Tuple[NodeRef, int]] = []
        frontier: List[Tuple[NodeRef, int]] = [(ref, 0)]
        for _ in range(limit):
            batches = self.db.refs_to_many([node for node, _ in frontier])
            next_frontier: List[Tuple[NodeRef, int]] = []
            for (node, distance), targets in zip(frontier, batches):
                for target, attrs in targets:
                    reached = (target, distance + attrs.offset_to)
                    result.append(reached)
                    next_frontier.append(reached)
            if not next_frontier:
                break
            frontier = next_frontier
        return result

    # ------------------------------------------------------------------
    # 6.7 Editing
    # ------------------------------------------------------------------

    def text_node_edit(self, ref: NodeRef) -> None:
        """Op 16: swap ``version1`` and ``version-2`` markers in a text node.

        The first application of the operation substitutes forward (to
        the one-character-longer marker), the next one backward, so two
        runs restore the node; time includes retrieve and store.
        """
        text = self.db.get_text(ref)
        if VERSION_1 in text.split(" "):
            self.db.set_text(ref, edit_text_forward(text))
        else:
            self.db.set_text(ref, edit_text_backward(text))

    def form_node_edit(self, ref: NodeRef) -> None:
        """Op 17: invert the 25x25 sub-rectangle at (50, 50) of a form node.

        Time includes retrieving and storing the bitmap.
        """
        bitmap = self.db.get_bitmap(ref)
        bitmap.invert_rect(50, 50, 25, 25)
        self.db.set_bitmap(ref, bitmap)


# ----------------------------------------------------------------------
# Operation catalog: metadata the harness drives the protocol with
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class OperationSpec:
    """One benchmark operation plus everything the harness needs.

    Attributes:
        op_id: the paper's operation number ("01" .. "18", with the A/B
            split of ops 05 and 07).
        name: the paper's camel-case operation name.
        category: section 6 category heading.
        make_input: draws one random input tuple for the operation from
            the generator metadata.  Reference-valued inputs are
            resolved during input preparation, outside the timed
            region, matching the paper's "Input: a random node".
        run: executes the operation on an :class:`Operations` facade.
        result_size: how many nodes the result represents, for the
            ms-per-node normalization of section 6.
        mutates: whether the operation updates the database (and hence
            whether the protocol's commits write anything).
        same_input_every_repetition: op 17 uses the *same* form node
            for all fifty repetitions (the paper's N.B.).
    """

    op_id: str
    name: str
    category: str
    make_input: Callable[[GeneratedDatabase, random.Random, HyperModelDatabase], tuple]
    run: Callable[[Operations, tuple], Any]
    result_size: Callable[[Any, GeneratedDatabase], int]
    mutates: bool = False
    same_input_every_repetition: bool = False


def _closure_start_level(gen: GeneratedDatabase) -> int:
    """Level-3 start nodes, or the deepest internal level if shallower."""
    return min(3, gen.config.levels - 1)


def _random_ref(
    gen: GeneratedDatabase, rng: random.Random, db: HyperModelDatabase
) -> tuple:
    return (db.lookup(gen.random_uid(rng)),)


def _random_internal_ref(
    gen: GeneratedDatabase, rng: random.Random, db: HyperModelDatabase
) -> tuple:
    return (db.lookup(gen.random_internal_uid(rng)),)


def _random_non_root_ref(
    gen: GeneratedDatabase, rng: random.Random, db: HyperModelDatabase
) -> tuple:
    return (db.lookup(gen.random_non_root_uid(rng)),)


def _random_level3_ref(
    gen: GeneratedDatabase, rng: random.Random, db: HyperModelDatabase
) -> tuple:
    level = _closure_start_level(gen)
    return (db.lookup(gen.random_uid_at_level(rng, level)),)


def _closure_size(gen: GeneratedDatabase) -> int:
    return gen.config.closure_1n_size(_closure_start_level(gen))


def build_operation_catalog() -> "OperationCatalog":
    """Construct the full catalog of ops 01-18."""
    specs = [
        OperationSpec(
            op_id="01",
            name="nameLookup",
            category="Name Lookup",
            make_input=lambda gen, rng, db: (gen.random_uid(rng),),
            run=lambda ops, args: ops.name_lookup(*args),
            result_size=lambda result, gen: 1,
        ),
        OperationSpec(
            op_id="02",
            name="nameOIDLookup",
            category="Name Lookup",
            make_input=_random_ref,
            run=lambda ops, args: ops.name_oid_lookup(*args),
            result_size=lambda result, gen: 1,
        ),
        OperationSpec(
            op_id="03",
            name="rangeLookupHundred",
            category="Range Lookup",
            make_input=lambda gen, rng, db: (rng.randint(1, 90),),
            run=lambda ops, args: ops.range_lookup_hundred(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="04",
            name="rangeLookupMillion",
            category="Range Lookup",
            make_input=lambda gen, rng, db: (rng.randint(1, 990_000),),
            run=lambda ops, args: ops.range_lookup_million(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="05A",
            name="groupLookup1N",
            category="Group Lookup",
            make_input=_random_internal_ref,
            run=lambda ops, args: ops.group_lookup_1n(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="05B",
            name="groupLookupMN",
            category="Group Lookup",
            make_input=_random_internal_ref,
            run=lambda ops, args: ops.group_lookup_mn(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="06",
            name="groupLookupMNATT",
            category="Group Lookup",
            make_input=_random_ref,
            run=lambda ops, args: ops.group_lookup_mnatt(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="07A",
            name="refLookup1N",
            category="Reference Lookup",
            make_input=_random_non_root_ref,
            run=lambda ops, args: ops.ref_lookup_1n(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="07B",
            name="refLookupMN",
            category="Reference Lookup",
            make_input=_random_non_root_ref,
            run=lambda ops, args: ops.ref_lookup_mn(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="08",
            name="refLookupMNATT",
            category="Reference Lookup",
            make_input=_random_ref,
            run=lambda ops, args: ops.ref_lookup_mnatt(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="09",
            name="seqScan",
            category="Sequential Scan",
            make_input=lambda gen, rng, db: (gen.structure_id,),
            run=lambda ops, args: ops.seq_scan(*args),
            result_size=lambda result, gen: max(int(result), 1),
        ),
        OperationSpec(
            op_id="10",
            name="closure1N",
            category="Closure Traversal",
            make_input=_random_level3_ref,
            run=lambda ops, args: ops.closure_1n(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="11",
            name="closure1NAttSum",
            category="Closure Operation",
            make_input=_random_level3_ref,
            run=lambda ops, args: ops.closure_1n_att_sum(*args),
            result_size=lambda result, gen: _closure_size(gen),
        ),
        OperationSpec(
            op_id="12",
            name="closure1NAttSet",
            category="Closure Operation",
            make_input=_random_level3_ref,
            run=lambda ops, args: ops.closure_1n_att_set(*args),
            result_size=lambda result, gen: max(int(result), 1),
            mutates=True,
        ),
        OperationSpec(
            op_id="13",
            name="closure1NPred",
            category="Closure Operation",
            make_input=lambda gen, rng, db: _random_level3_ref(gen, rng, db)
            + (rng.randint(1, 990_000),),
            run=lambda ops, args: ops.closure_1n_pred(*args),
            result_size=lambda result, gen: _closure_size(gen),
        ),
        OperationSpec(
            op_id="14",
            name="closureMN",
            category="Closure Traversal",
            make_input=_random_level3_ref,
            run=lambda ops, args: ops.closure_mn(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="15",
            name="closureMNATT",
            category="Closure Traversal",
            make_input=_random_level3_ref,
            run=lambda ops, args: ops.closure_mnatt(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
        OperationSpec(
            op_id="16",
            name="textNodeEdit",
            category="Editing",
            make_input=lambda gen, rng, db: (db.lookup(gen.random_text_uid(rng)),),
            run=lambda ops, args: ops.text_node_edit(*args),
            result_size=lambda result, gen: 1,
            mutates=True,
        ),
        OperationSpec(
            op_id="17",
            name="formNodeEdit",
            category="Editing",
            make_input=lambda gen, rng, db: (db.lookup(gen.random_form_uid(rng)),),
            run=lambda ops, args: ops.form_node_edit(*args),
            result_size=lambda result, gen: 1,
            mutates=True,
            same_input_every_repetition=True,
        ),
        OperationSpec(
            op_id="18",
            name="closureMNATTLinkSum",
            category="Closure Operation",
            make_input=_random_level3_ref,
            run=lambda ops, args: ops.closure_mnatt_linksum(*args),
            result_size=lambda result, gen: max(len(result), 1),
        ),
    ]
    return OperationCatalog(specs)


class OperationCatalog:
    """An ordered, id-addressable collection of operation specs."""

    def __init__(self, specs: Sequence[OperationSpec]) -> None:
        self._specs: Dict[str, OperationSpec] = {}
        for spec in specs:
            if spec.op_id in self._specs:
                raise ValueError(f"duplicate op id {spec.op_id}")
            self._specs[spec.op_id] = spec

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, op_id: str) -> bool:
        return op_id in self._specs

    def get(self, op_id: str) -> OperationSpec:
        """Look up a spec by the paper's operation number."""
        try:
            return self._specs[op_id]
        except KeyError:
            raise KeyError(f"unknown operation id {op_id!r}") from None

    def in_category(self, category: str) -> List[OperationSpec]:
        """All specs of one section 6 category, in paper order."""
        return [s for s in self._specs.values() if s.category == category]

    @property
    def categories(self) -> List[str]:
        """Distinct categories in paper order."""
        seen: List[str] = []
        for spec in self._specs.values():
            if spec.category not in seen:
                seen.append(spec.category)
        return seen

    @property
    def op_ids(self) -> List[str]:
        """All operation ids in paper order."""
        return list(self._specs)


#: The default catalog instance used by the harness and benchmarks.
CATALOG = build_operation_catalog()
