"""Form-node content: bit-packed bitmaps and the invert edit (op 17).

Section 5.1 specifies a form node as an initially white (all zero)
bitmap with each dimension drawn uniformly from 100..400 pixels.  The
editing operation (op 17) inverts a 25x25 sub-rectangle whose top-left
corner sits at (50, 50).

The bitmap is stored bit-packed, eight pixels per byte, row-major with
rows padded to whole bytes — this makes an average 250x250 bitmap weigh
about 7.8 kB, matching the paper's FormNode size estimate.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple


class Bitmap:
    """A mutable 1-bit-deep image, bit-packed row-major.

    Pixel (x, y) is bit ``x % 8`` (most significant bit first) of byte
    ``y * row_bytes + x // 8``.  A zero bit is "white", a one bit is
    "black"; freshly created bitmaps are all white per the paper.
    """

    __slots__ = ("width", "height", "_row_bytes", "_bits")

    def __init__(self, width: int, height: int, bits: bytes = b"") -> None:
        if width < 1 or height < 1:
            raise ValueError("bitmap dimensions must be positive")
        self.width = width
        self.height = height
        self._row_bytes = (width + 7) // 8
        expected = self._row_bytes * height
        if bits:
            if len(bits) != expected:
                raise ValueError(
                    f"expected {expected} bytes of bits, got {len(bits)}"
                )
            self._bits = bytearray(bits)
        else:
            self._bits = bytearray(expected)

    # ------------------------------------------------------------------
    # Pixel access
    # ------------------------------------------------------------------

    def _index(self, x: int, y: int) -> Tuple[int, int]:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"pixel ({x}, {y}) outside {self.width}x{self.height}")
        return y * self._row_bytes + x // 8, 7 - (x % 8)

    def get(self, x: int, y: int) -> int:
        """Return pixel (x, y) as 0 (white) or 1 (black)."""
        byte, bit = self._index(x, y)
        return (self._bits[byte] >> bit) & 1

    def set(self, x: int, y: int, value: int) -> None:
        """Set pixel (x, y) to 0 or 1."""
        byte, bit = self._index(x, y)
        if value:
            self._bits[byte] |= 1 << bit
        else:
            self._bits[byte] &= ~(1 << bit)

    def invert_rect(self, x: int, y: int, width: int, height: int) -> None:
        """Invert every pixel of the given sub-rectangle (op 17).

        The rectangle is clipped to the bitmap, so inverting near an
        edge of a small bitmap is well defined (the paper draws bitmap
        sizes down to 100x100 while the edit rectangle reaches x=75).
        """
        x_end = min(x + width, self.width)
        y_end = min(y + height, self.height)
        for yy in range(max(y, 0), y_end):
            for xx in range(max(x, 0), x_end):
                byte, bit = yy * self._row_bytes + xx // 8, 7 - (xx % 8)
                self._bits[byte] ^= 1 << bit

    def popcount(self) -> int:
        """Number of black (set) pixels; 0 for a fresh white bitmap."""
        total = 0
        full_mask = (1 << 8) - 1
        tail_bits = self.width % 8
        for y in range(self.height):
            row_start = y * self._row_bytes
            for i in range(self._row_bytes):
                byte = self._bits[row_start + i]
                if tail_bits and i == self._row_bytes - 1:
                    byte &= full_mask << (8 - tail_bits) & full_mask
                total += bin(byte).count("1")
        return total

    def is_white(self) -> bool:
        """Whether every pixel is 0 (the generated initial state)."""
        return not any(self._bits)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Return the packed pixel data (without dimensions)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, width: int, height: int, bits: bytes) -> "Bitmap":
        """Rebuild a bitmap from dimensions plus packed pixel data."""
        return cls(width, height, bits)

    def copy(self) -> "Bitmap":
        """Return an independent copy of this bitmap."""
        return Bitmap(self.width, self.height, bytes(self._bits))

    @property
    def size_bytes(self) -> int:
        """Bytes of packed pixel storage."""
        return len(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return (
            self.width == other.width
            and self.height == other.height
            and self._bits == other._bits
        )

    def __hash__(self) -> int:  # pragma: no cover - bitmaps are mutable
        raise TypeError("Bitmap is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"Bitmap({self.width}x{self.height}, "
            f"{self.popcount()} black pixels)"
        )

    def rows(self) -> Iterator[bytes]:
        """Iterate the packed rows (padding bits included)."""
        for y in range(self.height):
            start = y * self._row_bytes
            yield bytes(self._bits[start : start + self._row_bytes])


def generate_bitmap(
    rng: random.Random, min_dim: int = 100, max_dim: int = 400
) -> Bitmap:
    """Create the initial white bitmap of a form node (section 5.1).

    Width and height are drawn independently and uniformly from the
    inclusive ``min_dim``..``max_dim`` range.
    """
    return Bitmap(rng.randint(min_dim, max_dim), rng.randint(min_dim, max_dim))
