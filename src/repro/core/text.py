"""Text-node content: generation and the version1/version-2 edit.

Section 5.1 specifies a text node's content as a string of 10-100
words, each 1-10 random lowercase characters, separated by single
spaces, with the *first*, *middle* and *last* words forced to the
literal ``version1``.  The editing operation (op 16) substitutes
``version1`` with ``version-2`` (one character longer) and back again.
"""

from __future__ import annotations

import random
import string
from typing import List

VERSION_1 = "version1"
VERSION_2 = "version-2"

_LOWERCASE = string.ascii_lowercase


def generate_text(
    rng: random.Random,
    min_words: int = 10,
    max_words: int = 100,
    min_word_length: int = 1,
    max_word_length: int = 10,
) -> str:
    """Generate a text body exactly as section 5.1 specifies.

    Draws a uniform word count, fills each word with uniform-length
    runs of random lowercase letters, then overwrites the first, the
    middle and the last word with ``version1``.

    Args:
        rng: the seeded uniform PRNG to draw from.
        min_words / max_words: inclusive word-count range.
        min_word_length / max_word_length: inclusive word-length range.

    Returns:
        The space-joined text string.
    """
    word_count = rng.randint(min_words, max_words)
    words: List[str] = [
        "".join(
            rng.choice(_LOWERCASE)
            for _ in range(rng.randint(min_word_length, max_word_length))
        )
        for _ in range(word_count)
    ]
    words[0] = VERSION_1
    words[len(words) // 2] = VERSION_1
    words[-1] = VERSION_1
    return " ".join(words)


def version_marker_count(text: str) -> int:
    """Count whole-word occurrences of the ``version1`` marker."""
    return sum(1 for word in text.split(" ") if word == VERSION_1)


def edit_text_forward(text: str) -> str:
    """Substitute every ``version1`` with ``version-2`` (op 16, run 1).

    The replacement is one character longer than the original, which is
    deliberate in the paper: it forces the backend to handle a changed
    object size when the node is stored back.
    """
    return text.replace(VERSION_1, VERSION_2)


def edit_text_backward(text: str) -> str:
    """Substitute every ``version-2`` back to ``version1`` (op 16, run 2)."""
    return text.replace(VERSION_2, VERSION_1)


def is_valid_generated_text(
    text: str,
    min_words: int = 10,
    max_words: int = 100,
    max_word_length: int = 10,
) -> bool:
    """Check a string against the section 5.1 text-node contract.

    Used by :mod:`repro.core.verification` to validate generated
    databases: word count in range, all words lowercase and within the
    length bound, and ``version1`` at the first, middle and last
    positions.
    """
    words = text.split(" ")
    if not min_words <= len(words) <= max_words:
        return False
    if words[0] != VERSION_1 or words[-1] != VERSION_1:
        return False
    if words[len(words) // 2] != VERSION_1:
        return False
    for word in words:
        if word == VERSION_1:
            continue
        if not 1 <= len(word) <= max_word_length:
            return False
        if not all(ch in _LOWERCASE for ch in word):
            return False
    return True
