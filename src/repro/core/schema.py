"""An introspectable description of the HyperModel schema (Figure 1).

The paper presents its schema with the Object Modeling Technique (OMT):
classes, generalization between them, and three relationship types with
cardinality, ordering and attribute annotations.  This module encodes
that diagram as data so that backends can be *derived* from it (the
relational mapping walks it to emit DDL), tests can assert structural
facts against the paper, and the DrawNode schema-evolution experiment
(R4 / section 6.8) can extend it at run time.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.errors import SchemaError


class RelationshipKind(enum.Enum):
    """OMT relationship categories used in Figure 1."""

    AGGREGATION_1N = "aggregation-1-N"
    AGGREGATION_MN = "aggregation-M-N"
    ASSOCIATION_MN = "association-M-N"


@dataclasses.dataclass(frozen=True)
class AttributeDef:
    """One attribute of a class: a name plus a simple type name."""

    name: str
    type_name: str


@dataclasses.dataclass(frozen=True)
class RelationshipDef:
    """One relationship of the schema.

    Attributes:
        name: identifier of the relationship.
        kind: aggregation or association and its cardinality.
        forward_role / inverse_role: the two traversal role names the
            paper uses (e.g. ``children`` / ``parent``).
        ordered: whether the many-end keeps insertion order (the black
            circle-with-ring notation; true only for parent/children).
        attributes: attributes attached to the relationship itself
            (the offsets of ``refTo``/``refFrom``).
    """

    name: str
    kind: RelationshipKind
    forward_role: str
    inverse_role: str
    ordered: bool = False
    attributes: Tuple[AttributeDef, ...] = ()


@dataclasses.dataclass
class ClassDef:
    """One class of the generalization hierarchy."""

    name: str
    base: Optional[str] = None
    attributes: List[AttributeDef] = dataclasses.field(default_factory=list)


class Schema:
    """A mutable collection of classes and relationships.

    Mutability is deliberate: requirement R4 asks for dynamic schema
    modification, demonstrated by adding a ``DrawNode`` class at run
    time (:func:`add_draw_node_class`).
    """

    def __init__(self) -> None:
        self._classes: Dict[str, ClassDef] = {}
        self._relationships: Dict[str, RelationshipDef] = {}

    # -- classes -------------------------------------------------------

    def add_class(self, cls: ClassDef) -> None:
        """Register a class; its base (if any) must already exist."""
        if cls.name in self._classes:
            raise SchemaError(f"class {cls.name!r} already defined")
        if cls.base is not None and cls.base not in self._classes:
            raise SchemaError(f"unknown base class {cls.base!r}")
        self._classes[cls.name] = cls

    def get_class(self, name: str) -> ClassDef:
        """Look up a class definition by name."""
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def add_attribute(self, class_name: str, attribute: AttributeDef) -> None:
        """Dynamically add an attribute to an existing class (R4)."""
        cls = self.get_class(class_name)
        if any(a.name == attribute.name for a in cls.attributes):
            raise SchemaError(
                f"class {class_name!r} already has attribute {attribute.name!r}"
            )
        cls.attributes.append(attribute)

    def all_attributes(self, class_name: str) -> List[AttributeDef]:
        """Attributes of a class including those inherited from bases."""
        cls = self.get_class(class_name)
        inherited = self.all_attributes(cls.base) if cls.base else []
        return inherited + list(cls.attributes)

    def subclasses(self, class_name: str) -> List[str]:
        """Direct subclasses of a class, in definition order."""
        return [c.name for c in self._classes.values() if c.base == class_name]

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """Whether ``name`` equals or transitively specializes ``ancestor``."""
        current: Optional[str] = name
        while current is not None:
            if current == ancestor:
                return True
            current = self.get_class(current).base
        return False

    @property
    def class_names(self) -> List[str]:
        """Names of all classes, in definition order."""
        return list(self._classes)

    # -- relationships --------------------------------------------------

    def add_relationship(self, rel: RelationshipDef) -> None:
        """Register a relationship definition."""
        if rel.name in self._relationships:
            raise SchemaError(f"relationship {rel.name!r} already defined")
        self._relationships[rel.name] = rel

    def get_relationship(self, name: str) -> RelationshipDef:
        """Look up a relationship definition by name."""
        try:
            return self._relationships[name]
        except KeyError:
            raise SchemaError(f"unknown relationship {name!r}") from None

    @property
    def relationship_names(self) -> List[str]:
        """Names of all relationships, in definition order."""
        return list(self._relationships)


def build_hypermodel_schema() -> Schema:
    """Construct the exact schema of Figure 1.

    ``Node`` carries the four integer attributes; ``TextNode`` adds a
    ``text`` string and ``FormNode`` a ``bitMap``; the three
    relationships are the ordered 1-N aggregation, the M-N aggregation
    and the attributed M-N association.
    """
    schema = Schema()
    schema.add_class(
        ClassDef(
            "Node",
            attributes=[
                AttributeDef("uniqueId", "int"),
                AttributeDef("ten", "int"),
                AttributeDef("hundred", "int"),
                AttributeDef("million", "int"),
            ],
        )
    )
    schema.add_class(
        ClassDef("TextNode", base="Node", attributes=[AttributeDef("text", "str")])
    )
    schema.add_class(
        ClassDef("FormNode", base="Node", attributes=[AttributeDef("bitMap", "bitmap")])
    )
    schema.add_relationship(
        RelationshipDef(
            name="parentChildren",
            kind=RelationshipKind.AGGREGATION_1N,
            forward_role="children",
            inverse_role="parent",
            ordered=True,
        )
    )
    schema.add_relationship(
        RelationshipDef(
            name="partOfParts",
            kind=RelationshipKind.AGGREGATION_MN,
            forward_role="parts",
            inverse_role="partOf",
        )
    )
    schema.add_relationship(
        RelationshipDef(
            name="refToRefFrom",
            kind=RelationshipKind.ASSOCIATION_MN,
            forward_role="refTo",
            inverse_role="refFrom",
            attributes=(
                AttributeDef("offsetFrom", "int"),
                AttributeDef("offsetTo", "int"),
            ),
        )
    )
    return schema


def add_draw_node_class(schema: Schema) -> ClassDef:
    """Perform the R4 schema-evolution experiment of section 6.8.

    Adds a ``DrawNode`` subclass of ``Node`` holding counts of circles,
    rectangles and ellipses, exactly as the requirement sketches.
    """
    draw = ClassDef(
        "DrawNode",
        base="Node",
        attributes=[
            AttributeDef("circles", "int"),
            AttributeDef("rectangles", "int"),
            AttributeDef("ellipses", "int"),
        ],
    )
    schema.add_class(draw)
    return draw
