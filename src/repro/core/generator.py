"""Test-database generation exactly as section 5.2 specifies.

The generator builds, through the abstract backend interface:

1. the **1-N aggregation hierarchy** — a tree with fan-out 5 (by
   default) and leaves on level 4, 5 or 6; leaves are text nodes except
   every ``text_nodes_per_form_node``-th, which is a form node;
2. the **M-N aggregation** — each non-leaf node is related to 5 random
   nodes *of the next level*;
3. the **attributed M-N association** — each node gets exactly one
   outgoing reference to a random node, with offsets drawn from 0..9.

All draws come from one seeded ``random.Random`` (uniform
distributions, per the paper's N.B.), so generation is deterministic
for a given :class:`~repro.core.config.HyperModelConfig`.

The generator also measures what section 5.3 asks to be measured:
creation time split into internal nodes, leaf nodes and each
relationship type, each with its commit.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Dict, List, Optional

from repro.core.bitmap import generate_bitmap
from repro.core.config import HyperModelConfig
from repro.errors import ConfigurationError
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.core.text import generate_text


@dataclasses.dataclass
class GenerationStats:
    """Wall-clock seconds of each creation phase (section 5.3 a-d).

    Each figure includes the phase's commit, as the paper requires.
    ``per_node_ms`` / ``per_relationship_ms`` provide the normalized
    milliseconds the creation benchmark reports.
    """

    internal_node_seconds: float = 0.0
    leaf_node_seconds: float = 0.0
    one_n_seconds: float = 0.0
    m_n_seconds: float = 0.0
    m_n_att_seconds: float = 0.0
    internal_nodes: int = 0
    leaf_nodes: int = 0
    one_n_links: int = 0
    m_n_links: int = 0
    m_n_att_links: int = 0

    def per_node_ms(self) -> Dict[str, float]:
        """Milliseconds per created node, split internal/leaf."""
        result = {}
        if self.internal_nodes:
            result["internal"] = 1000.0 * self.internal_node_seconds / self.internal_nodes
        if self.leaf_nodes:
            result["leaf"] = 1000.0 * self.leaf_node_seconds / self.leaf_nodes
        return result

    def per_relationship_ms(self) -> Dict[str, float]:
        """Milliseconds per created relationship, split by type."""
        result = {}
        if self.one_n_links:
            result["1-N"] = 1000.0 * self.one_n_seconds / self.one_n_links
        if self.m_n_links:
            result["M-N"] = 1000.0 * self.m_n_seconds / self.m_n_links
        if self.m_n_att_links:
            result["M-N-att"] = 1000.0 * self.m_n_att_seconds / self.m_n_att_links
        return result

    @property
    def total_seconds(self) -> float:
        """Total creation wall-clock time."""
        return (
            self.internal_node_seconds
            + self.leaf_node_seconds
            + self.one_n_seconds
            + self.m_n_seconds
            + self.m_n_att_seconds
        )


@dataclasses.dataclass
class GeneratedDatabase:
    """Handle to a freshly generated test structure.

    Holds the per-level uniqueId index the harness uses to pick random
    level-3 start nodes, the leaf-kind partition for the editing
    operations, and the creation statistics.  This metadata lives
    *outside* the database on purpose: the paper forbids operations
    from exploiting knowledge of the structure, so only the harness's
    input-picking uses it.
    """

    config: HyperModelConfig
    structure_id: int
    uids_by_level: List[List[int]]
    text_uids: List[int]
    form_uids: List[int]
    root_uid: int
    stats: GenerationStats

    @property
    def total_nodes(self) -> int:
        """Total nodes generated in this structure."""
        return sum(len(level) for level in self.uids_by_level)

    def random_uid(self, rng: random.Random) -> int:
        """A uniformly random uniqueId of this structure."""
        return rng.randint(self.min_uid, self.max_uid)

    @property
    def min_uid(self) -> int:
        """Smallest uniqueId of the structure."""
        return self.uids_by_level[0][0]

    @property
    def max_uid(self) -> int:
        """Largest uniqueId of the structure."""
        return self.uids_by_level[-1][-1]

    def random_uid_at_level(self, rng: random.Random, level: int) -> int:
        """A uniformly random uniqueId at a given hierarchy level."""
        return rng.choice(self.uids_by_level[level])

    def random_internal_uid(self, rng: random.Random) -> int:
        """A random uniqueId of a node that has children."""
        level = rng.randrange(len(self.uids_by_level) - 1)
        return rng.choice(self.uids_by_level[level])

    def random_non_root_uid(self, rng: random.Random) -> int:
        """A random uniqueId excluding the root (for parent lookups)."""
        return rng.randint(self.min_uid + 1, self.max_uid)

    def random_text_uid(self, rng: random.Random) -> int:
        """A random text-node uniqueId (for op 16)."""
        if not self.text_uids:
            raise ConfigurationError(
                "this structure has no text nodes (op 16 not applicable)"
            )
        return rng.choice(self.text_uids)

    def random_form_uid(self, rng: random.Random) -> int:
        """A random form-node uniqueId (for op 17).

        Small configurations may contain no form node at all (fewer
        leaves than ``text_nodes_per_form_node``); op 17 is then not
        applicable, mirroring the paper's "if applicable" treatment.
        """
        if not self.form_uids:
            raise ConfigurationError(
                "this structure has no form nodes (op 17 not applicable)"
            )
        return rng.choice(self.form_uids)


class DatabaseGenerator:
    """Builds a HyperModel test structure into any backend."""

    def __init__(self, config: Optional[HyperModelConfig] = None) -> None:
        self.config = config or HyperModelConfig()

    def generate(
        self,
        db: HyperModelDatabase,
        structure_id: int = 1,
        first_uid: int = 1,
        commit_each_phase: bool = True,
    ) -> GeneratedDatabase:
        """Generate one complete test structure into ``db``.

        Args:
            db: an *open* backend to populate.
            structure_id: tag for this copy of the structure.
            first_uid: uniqueId of the first node created (so a second
                copy can use a disjoint key range).
            commit_each_phase: commit after each creation phase, as the
                section 5.3 measurement protocol requires.

        Returns:
            A :class:`GeneratedDatabase` with the level index, the
            leaf-kind partition and the creation statistics.
        """
        cfg = self.config
        rng = random.Random(cfg.seed + structure_id)
        stats = GenerationStats()

        uids_by_level: List[List[int]] = []
        refs_by_level: List[List[NodeRef]] = []
        text_uids: List[int] = []
        form_uids: List[int] = []
        next_uid = first_uid

        # -- Phase 1: internal nodes (levels 0 .. levels-1) -------------
        started = time.perf_counter()
        for level in range(cfg.levels):
            level_uids: List[int] = []
            level_refs: List[NodeRef] = []
            for _ in range(cfg.nodes_at_level(level)):
                data = self._plain_node(rng, next_uid, structure_id)
                level_refs.append(db.create_node(data))
                level_uids.append(next_uid)
                next_uid += 1
            uids_by_level.append(level_uids)
            refs_by_level.append(level_refs)
        if commit_each_phase:
            db.commit()
        stats.internal_node_seconds = time.perf_counter() - started
        stats.internal_nodes = next_uid - first_uid

        # -- Phase 2: leaf nodes (text and form mix) --------------------
        started = time.perf_counter()
        leaf_uids: List[int] = []
        leaf_refs: List[NodeRef] = []
        for index in range(cfg.leaf_nodes):
            if (index + 1) % cfg.text_nodes_per_form_node == 0:
                data = self._form_node(rng, next_uid, structure_id)
                form_uids.append(next_uid)
            else:
                data = self._text_node(rng, next_uid, structure_id)
                text_uids.append(next_uid)
            leaf_refs.append(db.create_node(data))
            leaf_uids.append(next_uid)
            next_uid += 1
        uids_by_level.append(leaf_uids)
        refs_by_level.append(leaf_refs)
        if commit_each_phase:
            db.commit()
        stats.leaf_node_seconds = time.perf_counter() - started
        stats.leaf_nodes = len(leaf_uids)

        # -- Phase 3: the ordered 1-N aggregation hierarchy -------------
        started = time.perf_counter()
        for level in range(cfg.levels):
            parents = refs_by_level[level]
            children = refs_by_level[level + 1]
            for parent_index, parent in enumerate(parents):
                base = parent_index * cfg.fanout
                for child in children[base : base + cfg.fanout]:
                    db.add_child(parent, child)
                    stats.one_n_links += 1
        if commit_each_phase:
            db.commit()
        stats.one_n_seconds = time.perf_counter() - started

        # -- Phase 4: the M-N aggregation (5 random next-level parts) ---
        started = time.perf_counter()
        for level in range(cfg.levels):
            next_level = refs_by_level[level + 1]
            for whole in refs_by_level[level]:
                for part in self._sample(rng, next_level, cfg.parts_per_node):
                    db.add_part(whole, part)
                    stats.m_n_links += 1
        if commit_each_phase:
            db.commit()
        stats.m_n_seconds = time.perf_counter() - started

        # -- Phase 5: the attributed M-N association (one ref per node) -
        started = time.perf_counter()
        all_refs = [ref for level in refs_by_level for ref in level]
        for source in all_refs:
            target = all_refs[rng.randrange(len(all_refs))]
            attrs = LinkAttributes(
                offset_from=rng.randrange(cfg.max_offset),
                offset_to=rng.randrange(cfg.max_offset),
            )
            db.add_reference(source, target, attrs)
            stats.m_n_att_links += 1
        if commit_each_phase:
            db.commit()
        stats.m_n_att_seconds = time.perf_counter() - started

        return GeneratedDatabase(
            config=cfg,
            structure_id=structure_id,
            uids_by_level=uids_by_level,
            text_uids=text_uids,
            form_uids=form_uids,
            root_uid=first_uid,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Node factories
    # ------------------------------------------------------------------

    def _random_attributes(self, rng: random.Random) -> Dict[str, int]:
        cfg = self.config
        return {
            "ten": rng.randint(*cfg.ten_range),
            "hundred": rng.randint(*cfg.hundred_range),
            "million": rng.randint(*cfg.million_range),
        }

    def _plain_node(
        self, rng: random.Random, uid: int, structure_id: int
    ) -> NodeData:
        return NodeData(
            unique_id=uid, structure_id=structure_id, **self._random_attributes(rng)
        )

    def _text_node(
        self, rng: random.Random, uid: int, structure_id: int
    ) -> NodeData:
        cfg = self.config
        return NodeData(
            unique_id=uid,
            kind=NodeKind.TEXT,
            text=generate_text(
                rng,
                cfg.min_words,
                cfg.max_words,
                cfg.min_word_length,
                cfg.max_word_length,
            ),
            structure_id=structure_id,
            **self._random_attributes(rng),
        )

    def _form_node(
        self, rng: random.Random, uid: int, structure_id: int
    ) -> NodeData:
        cfg = self.config
        return NodeData(
            unique_id=uid,
            kind=NodeKind.FORM,
            bitmap=generate_bitmap(rng, cfg.min_bitmap_dim, cfg.max_bitmap_dim),
            structure_id=structure_id,
            **self._random_attributes(rng),
        )

    @staticmethod
    def _sample(rng: random.Random, population: List[NodeRef], k: int) -> List[NodeRef]:
        """Sample ``k`` distinct items, or all of them if fewer exist."""
        if k >= len(population):
            return list(population)
        return rng.sample(population, k)
