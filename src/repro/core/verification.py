"""Structural verification of a generated test database.

The paper's Figures 2-4 and the section 5.2 counting rules fully
determine the *shape* of a correct test database.  This module checks a
populated backend against those rules, so that every backend
implementation can be validated with the same machinery (and so the
reproduction can prove its generator is faithful before timing
anything).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.generator import GeneratedDatabase
from repro.core.interface import HyperModelDatabase
from repro.core.model import NodeKind
from repro.core.text import is_valid_generated_text


@dataclasses.dataclass
class VerificationReport:
    """Outcome of a structural verification run."""

    checks_run: int = 0
    problems: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return not self.problems

    def _check(self, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self.problems.append(message)

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` listing all problems, if any."""
        if self.problems:
            raise AssertionError(
                "database verification failed:\n  " + "\n  ".join(self.problems)
            )


def verify_database(
    db: HyperModelDatabase,
    gen: GeneratedDatabase,
    check_content: bool = True,
    content_sample: int = 25,
) -> VerificationReport:
    """Verify one generated structure against the section 5.2 contract.

    Checks node counts per level, the 1-N tree shape (fan-out, ordering,
    parent inverse), the M-N relation (parts count and next-level
    targets), the attributed M-N relation (exactly one outgoing
    reference with offsets in range), attribute domains, and a sample of
    leaf content.

    Args:
        db: the open backend holding the structure.
        gen: the generation metadata for the structure.
        check_content: also validate text bodies and bitmaps.
        content_sample: how many text/form nodes to sample for content
            checks (full content verification of a level-6 database
            would read megabytes per run).

    Returns:
        A :class:`VerificationReport`; call ``raise_if_failed`` to turn
        problems into a test failure.
    """
    cfg = gen.config
    report = VerificationReport()

    # -- Global counts ----------------------------------------------------
    report._check(
        db.node_count(gen.structure_id) == cfg.total_nodes,
        f"node count {db.node_count(gen.structure_id)} != {cfg.total_nodes}",
    )
    report._check(
        len(gen.uids_by_level) == cfg.levels + 1,
        f"level index has {len(gen.uids_by_level)} levels, expected {cfg.levels + 1}",
    )
    for level, uids in enumerate(gen.uids_by_level):
        report._check(
            len(uids) == cfg.nodes_at_level(level),
            f"level {level} has {len(uids)} nodes, expected {cfg.nodes_at_level(level)}",
        )
    report._check(
        len(gen.form_uids) == cfg.form_node_count,
        f"{len(gen.form_uids)} form nodes, expected {cfg.form_node_count}",
    )
    report._check(
        len(gen.text_uids) == cfg.text_node_count,
        f"{len(gen.text_uids)} text nodes, expected {cfg.text_node_count}",
    )

    # -- Per-node structural checks ---------------------------------------
    uid_to_level = {
        uid: level for level, uids in enumerate(gen.uids_by_level) for uid in uids
    }
    for level, uids in enumerate(gen.uids_by_level):
        is_leaf_level = level == cfg.levels
        for uid in uids:
            ref = db.lookup(uid)

            # Attribute domains.
            for name, (low, high) in (
                ("ten", cfg.ten_range),
                ("hundred", cfg.hundred_range),
                ("million", cfg.million_range),
            ):
                value = db.get_attribute(ref, name)
                report._check(
                    low <= value <= high,
                    f"node {uid}: {name}={value} outside {low}..{high}",
                )
            report._check(
                db.get_attribute(ref, "uniqueId") == uid,
                f"node {uid}: uniqueId attribute mismatch",
            )

            # 1-N shape.
            children = db.children(ref)
            if is_leaf_level:
                report._check(
                    not children, f"leaf node {uid} has {len(children)} children"
                )
            else:
                report._check(
                    len(children) == cfg.fanout,
                    f"internal node {uid} has {len(children)} children, "
                    f"expected {cfg.fanout}",
                )
                for child in children:
                    report._check(
                        db.parent(child) == ref,
                        f"child of node {uid} has wrong parent",
                    )

            if uid == gen.root_uid:
                report._check(
                    db.parent(ref) is None, f"root node {uid} has a parent"
                )

            # M-N shape: parts point exactly one level down.
            parts = db.parts(ref)
            if is_leaf_level:
                report._check(not parts, f"leaf node {uid} has parts")
            else:
                expected_parts = min(
                    cfg.parts_per_node, cfg.nodes_at_level(level + 1)
                )
                report._check(
                    len(parts) == expected_parts,
                    f"node {uid} has {len(parts)} parts, expected {expected_parts}",
                )
                for part in parts:
                    part_uid = db.get_attribute(part, "uniqueId")
                    report._check(
                        uid_to_level.get(part_uid) == level + 1,
                        f"part {part_uid} of node {uid} is not on level {level + 1}",
                    )

            # Attributed M-N: exactly one outgoing reference, offsets 0..9.
            refs = db.refs_to(ref)
            report._check(
                len(refs) == 1,
                f"node {uid} has {len(refs)} outgoing references, expected 1",
            )
            for _target, attrs in refs:
                report._check(
                    0 <= attrs.offset_from < cfg.max_offset
                    and 0 <= attrs.offset_to < cfg.max_offset,
                    f"node {uid}: link offsets {attrs} outside 0..{cfg.max_offset - 1}",
                )

            # Inverse consistency: partOf must mirror parts, refFrom
            # must mirror refTo (the bidirectional contract of R1).
            for owner in db.part_of(ref):
                owner_parts = {
                    db.get_attribute(p, "uniqueId") for p in db.parts(owner)
                }
                report._check(
                    uid in owner_parts,
                    f"node {uid}: partOf owner "
                    f"{db.get_attribute(owner, 'uniqueId')} does not list it",
                )
            for referrer in db.refs_from(ref):
                targets = {
                    db.get_attribute(t, "uniqueId")
                    for t, _attrs in db.refs_to(referrer)
                }
                report._check(
                    uid in targets,
                    f"node {uid}: refFrom referrer "
                    f"{db.get_attribute(referrer, 'uniqueId')} "
                    "has no matching refTo",
                )

            # Kind partition.
            kind = db.kind_of(ref)
            if not is_leaf_level:
                report._check(
                    kind is NodeKind.NODE,
                    f"internal node {uid} has leaf kind {kind}",
                )

    # -- Leaf kinds ---------------------------------------------------------
    for uid in gen.text_uids[:content_sample] if check_content else []:
        ref = db.lookup(uid)
        report._check(
            db.kind_of(ref) is NodeKind.TEXT, f"node {uid} is not a text node"
        )
        report._check(
            is_valid_generated_text(
                db.get_text(ref),
                cfg.min_words,
                cfg.max_words,
                cfg.max_word_length,
            ),
            f"text node {uid} violates the section 5.1 text contract",
        )
    for uid in gen.form_uids[:content_sample] if check_content else []:
        ref = db.lookup(uid)
        report._check(
            db.kind_of(ref) is NodeKind.FORM, f"node {uid} is not a form node"
        )
        bitmap = db.get_bitmap(ref)
        report._check(
            cfg.min_bitmap_dim <= bitmap.width <= cfg.max_bitmap_dim
            and cfg.min_bitmap_dim <= bitmap.height <= cfg.max_bitmap_dim,
            f"form node {uid}: bitmap {bitmap.width}x{bitmap.height} out of range",
        )
        report._check(
            bitmap.is_white(), f"form node {uid}: initial bitmap is not white"
        )

    return report
