"""Core of the HyperModel benchmark.

This subpackage contains everything the paper defines at the conceptual
level: the schema (section 5.1), the test-database generator (section
5.2), the benchmark operations (section 6) and the structural
verification of generated databases.  Nothing in here depends on a
concrete storage backend; all operations are written against the
:class:`repro.core.interface.HyperModelDatabase` protocol.
"""

from repro.core.config import HyperModelConfig, LEVEL_NODE_COUNTS
from repro.core.model import NodeKind, NodeData, LinkAttributes
from repro.core.interface import HyperModelDatabase
from repro.core.generator import DatabaseGenerator, GenerationStats
from repro.core.operations import Operations, OperationCatalog

__all__ = [
    "HyperModelConfig",
    "LEVEL_NODE_COUNTS",
    "NodeKind",
    "NodeData",
    "LinkAttributes",
    "HyperModelDatabase",
    "DatabaseGenerator",
    "GenerationStats",
    "Operations",
    "OperationCatalog",
]
