"""Value objects of the HyperModel conceptual schema (section 5.1).

A HyperModel database is a graph of *nodes* connected by three
relationship types:

* ``parent``/``children`` — an **ordered 1-N aggregation** forming the
  document hierarchy (sections within chapters within documents).
* ``partOf``/``parts`` — an **unordered M-N aggregation** that lets a
  node be a shared sub-part of several composites.
* ``refTo``/``refFrom`` — an **M-N association with attributes**: each
  link carries ``offsetFrom`` and ``offsetTo`` integers, turning the
  reference graph into a directed weighted graph.

``TextNode`` and ``FormNode`` specialize ``Node`` through
generalization.  Backends are free to represent nodes however they
like; :class:`NodeData` is the *transfer object* the generator hands a
backend when creating a node, and :class:`LinkAttributes` carries the
weights of an attributed link.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.core.bitmap import Bitmap


class NodeKind(enum.Enum):
    """The three classes of the generalization hierarchy of Figure 1."""

    NODE = "node"
    TEXT = "text"
    FORM = "form"

    @property
    def is_leaf_kind(self) -> bool:
        """Whether instances of this kind carry leaf content."""
        return self is not NodeKind.NODE


#: Names of the integer attributes every node carries (Figure 1).
NODE_ATTRIBUTES = ("uniqueId", "ten", "hundred", "million")


@dataclasses.dataclass
class NodeData:
    """A node's attribute values, independent of any backend.

    Attributes:
        unique_id: unique integer key, 1..total_nodes (the paper's
            ``uniqueId``; it must *not* encode structural position).
        ten / hundred / million: random integers drawn uniformly from
            1..10, 1..100 and 1..1 000 000 respectively.
        kind: which class of the generalization hierarchy this is.
        text: the text body for ``TextNode`` instances, else ``None``.
        bitmap: the bitmap for ``FormNode`` instances, else ``None``.
        structure_id: which test structure the node belongs to.  The
            paper allows several copies of the test database to coexist
            and forbids the sequential scan from using the global class
            extent, so every node is tagged with its structure.
    """

    unique_id: int
    ten: int
    hundred: int
    million: int
    kind: NodeKind = NodeKind.NODE
    text: Optional[str] = None
    bitmap: Optional[Bitmap] = None
    structure_id: int = 1

    def __post_init__(self) -> None:
        if self.kind is NodeKind.TEXT and self.text is None:
            raise ValueError("TextNode requires a text body")
        if self.kind is NodeKind.FORM and self.bitmap is None:
            raise ValueError("FormNode requires a bitmap")
        if self.kind is NodeKind.NODE and (self.text or self.bitmap):
            raise ValueError("plain Node carries no content")

    def attribute(self, name: str) -> int:
        """Return one of the four integer attributes by paper name."""
        mapping = {
            "uniqueId": self.unique_id,
            "ten": self.ten,
            "hundred": self.hundred,
            "million": self.million,
        }
        try:
            return mapping[name]
        except KeyError:
            raise KeyError(f"unknown node attribute {name!r}") from None


@dataclasses.dataclass(frozen=True)
class LinkAttributes:
    """Weights of one refTo/refFrom link (Figure 4).

    ``offset_from`` is the weight reading the link source-to-target,
    ``offset_to`` the weight in the opposite direction; both are drawn
    uniformly from 0..9 by the generator.
    """

    offset_from: int
    offset_to: int

    def __post_init__(self) -> None:
        if self.offset_from < 0 or self.offset_to < 0:
            raise ValueError("link offsets must be non-negative")


@dataclasses.dataclass(frozen=True)
class Reference:
    """A resolved attributed link: target node reference plus weights."""

    target: object
    attributes: LinkAttributes
