"""The replica router: one client's read-scaled view of the group.

:class:`ReplicaRouter` presents the same verb surface as a single
:class:`~repro.netsim.server.ObjectServer`, so
:class:`~repro.backends.clientserver.ClientServerDatabase` plugs it in
as its ``server`` unchanged.  Behind the surface:

* **Reads** (``fetch``, ``fetch_many``, ``traverse``, ``readahead`` —
  the whole push-down surface) route to a replica picked by the
  configured policy, but only among replicas whose applied LSN has
  reached this client's **session LSN token** — the LSN of its last
  acknowledged write.  If no replica qualifies (fresh write, lagging
  replicas) the read falls back to the primary, so read-your-writes
  holds unconditionally while everything else enjoys bounded-staleness
  reads off the primary's lane.
* **Writes and everything non-read** (``store``, ``commit_batch``,
  probes, queries, named lists, 2PC verbs, admin) go to the primary;
  a successful write advances the session token to the LSN the commit
  shipped at.
* **Policies** — ``round_robin`` rotates the eligible set per client;
  ``least_queue`` picks the eligible replica whose transport lane has
  the smallest backlog (``server_free_at - virtual_now`` on the
  contended lanes the ``backend.mp.*`` gauges watch), degrading to
  round-robin when lanes expose no queue (the single-client
  ``DirectTransport``).

The router is **per client**: the session token and the round-robin
cursor are client state.  All routers share one
:class:`~repro.replication.group.ReplicationGroup`; a group
``generation`` bump (bulk load, failover promotion) invalidates every
outstanding session token on its next read.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine.wal import WriteAheadLog
from repro.errors import ConfigurationError
from repro.netsim.config import REPLICA_POLICIES
from repro.netsim.server import ObjectServer, ServerStats
from repro.obs import Instrumentation, TraceContext, resolve
from repro.replication.group import ReplicationGroup


class ReplicaRouter:
    """Session-consistent read routing over a shared replication group.

    Args:
        group: the shared primary + replicas deployment.
        policy: ``"round_robin"`` or ``"least_queue"``.
        instrumentation: counter/span sink (defaults to the group's).
    """

    def __init__(
        self,
        group: ReplicationGroup,
        *,
        policy: str = "round_robin",
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if policy not in REPLICA_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {REPLICA_POLICIES}, got {policy!r}"
            )
        self.group = group
        self.policy = policy
        self.instrumentation = (
            resolve(instrumentation)
            if instrumentation is not None
            else group.instrumentation
        )
        self._instr = self.instrumentation
        #: LSN of this client's last acknowledged write; reads only
        #: route to replicas that have applied at least this much.
        self.session_lsn = 0
        #: Ablation switch: route every read to the primary as if no
        #: replica were ever eligible (the benchmark's primary-served
        #: comparison arm; never set in production paths).
        self.force_primary = False
        self._generation = group.generation
        self._rr = 0
        self._pending_trace: Optional[TraceContext] = None
        self._reply_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # ObjectServer surface: plumbing
    # ------------------------------------------------------------------

    @property
    def clock(self):
        return self.group.clock

    @property
    def latency(self):
        return self.group.latency

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self.group.wal

    @property
    def stats(self) -> ServerStats:
        """Aggregated request counters across the whole group."""
        total = ServerStats()
        servers = [self.group.primary] + self.group.replicas
        for server in servers:
            for field in total.__dataclass_fields__:
                setattr(
                    total,
                    field,
                    getattr(total, field) + getattr(server.stats, field),
                )
        return total

    def trace_lane_metadata(self) -> Dict[str, Dict[str, object]]:
        """Per-lane metadata for the Chrome trace export (the servers
        stamp ``primary``/``replica<i>`` tags on their spans)."""
        meta: Dict[str, Dict[str, object]] = {
            "primary": {
                "role": "primary",
                "replicas": self.group.config.replicas,
                "policy": self.policy,
            }
        }
        for index in range(self.group.config.replicas):
            meta[f"replica{index}"] = {
                "role": "replica",
                "replicas": self.group.config.replicas,
                "policy": self.policy,
            }
        return meta

    def accept_trace_context(self, context: Optional[TraceContext]) -> None:
        self._pending_trace = context

    def take_reply_versions(self) -> Dict[int, int]:
        """Version stamps from whichever server answered this verb.

        Replica stamps are the origin commit txids (apply mirrors
        them), so a read set mixing replica- and primary-served reads
        validates consistently at the primary.
        """
        versions = self._reply_versions
        self._reply_versions = {}
        return versions

    def subscribe(self, cache) -> None:
        self.group.subscribe(cache)

    def unsubscribe(self, cache) -> None:
        self.group.unsubscribe(cache)

    def use_transport(self, transport):
        return self.group.use_transport(transport)

    def _call(self, server: ObjectServer, verb: str, *args, **kwargs):
        server.accept_trace_context(self._pending_trace)
        result = getattr(server, verb)(*args, **kwargs)
        self._reply_versions.update(server.take_reply_versions())
        return result

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------

    def _check_generation(self) -> None:
        if self._generation != self.group.generation:
            # Bulk load or failover: the old token speaks a dead
            # epoch's LSNs; reset rather than compare across epochs.
            self._generation = self.group.generation
            self.session_lsn = 0
            self._rr = 0

    @staticmethod
    def _backlog(server: ObjectServer) -> float:
        transport = server.transport
        free_at = getattr(transport, "server_free_at", None)
        now = getattr(transport, "virtual_now", None)
        if free_at is None or now is None:
            return 0.0
        return max(0.0, free_at - now)

    def _read_server(self) -> ObjectServer:
        """Pick the server for one read: an eligible replica, or the
        primary when none is fresh enough for the session token."""
        self._check_generation()
        if self.force_primary:
            self.group.catch_up()
            self._instr.count("backend.replica.forced_primary")
            return self.group.primary
        states = self.group.eligible_replicas(self.session_lsn)
        if not states:
            self._instr.count("backend.replica.fallbacks")
            return self.group.primary
        if self.policy == "least_queue":
            backlogs = [self._backlog(state.server) for state in states]
            if max(backlogs) > min(backlogs):
                choice = min(
                    zip(backlogs, range(len(states))),
                    key=lambda pair: pair,
                )[1]
                state = states[choice]
            else:
                state = states[self._rr % len(states)]
                self._rr += 1
        else:
            state = states[self._rr % len(states)]
            self._rr += 1
        self._instr.count("backend.replica.reads")
        self._instr.count(f"backend.replica.{state.index}.reads")
        return state.server

    def fetch(self, uid: int) -> Dict[str, Any]:
        return self._call(self._read_server(), "fetch", uid)

    def fetch_many(self, uids: List[int]) -> Dict[int, Dict[str, Any]]:
        return self._call(self._read_server(), "fetch_many", uids)

    def traverse(
        self,
        root: int,
        relation: str,
        direction: str = "forward",
        depth: Optional[int] = None,
        with_records: bool = True,
        limit: Optional[int] = None,
    ) -> Dict[int, Dict[str, Any]]:
        return self._call(
            self._read_server(),
            "traverse",
            root,
            relation,
            direction=direction,
            depth=depth,
            with_records=with_records,
            limit=limit,
        )

    def readahead(
        self, uids: List[int], depth: int = 1, limit: Optional[int] = None
    ) -> Dict[int, Dict[str, Any]]:
        return self._call(
            self._read_server(), "readahead", uids, depth=depth, limit=limit
        )

    # ------------------------------------------------------------------
    # Writes (primary only; acks advance the session token)
    # ------------------------------------------------------------------

    def _note_write(self) -> None:
        # The primary's on_commit hook already polled the shipper, so
        # primary_lsn is exactly the LSN this write committed at.
        self.session_lsn = self.group.shipper.primary_lsn

    def store(self, uid: int, record: Dict[str, Any], from_cache=None) -> None:
        self._check_generation()
        result = self._call(
            self.group.primary, "store", uid, record, from_cache=from_cache
        )
        self._note_write()
        return result

    def commit_batch(
        self,
        writes: Dict[int, Dict[str, Any]],
        reads: Dict[int, int],
        lists: Optional[Dict[str, List[int]]] = None,
        from_cache=None,
    ) -> Dict[int, int]:
        self._check_generation()
        applied = self._call(
            self.group.primary,
            "commit_batch",
            writes,
            reads,
            lists,
            from_cache=from_cache,
        )
        if writes:
            self._note_write()
        return applied

    # ------------------------------------------------------------------
    # Primary passthrough (probes, queries, lists, 2PC, admin)
    # ------------------------------------------------------------------

    def exists(self, uid: int) -> bool:
        return self._call(self.group.primary, "exists", uid)

    def range_query(self, attribute: str, low: int, high: int) -> List[int]:
        return self._call(
            self.group.primary, "range_query", attribute, low, high
        )

    def scan_structure(self, structure_id: int) -> List[int]:
        return self._call(self.group.primary, "scan_structure", structure_id)

    def referrers_of(self, uid: int) -> List[int]:
        return self._call(self.group.primary, "referrers_of", uid)

    def store_list(self, name: str, uids: List[int]) -> None:
        return self._call(self.group.primary, "store_list", name, uids)

    def load_list(self, name: str) -> List[int]:
        return self._call(self.group.primary, "load_list", name)

    def prepare_batch(self, *args, **kwargs):
        return self._call(self.group.primary, "prepare_batch", *args, **kwargs)

    def commit_prepared(self, txid: int):
        result = self._call(self.group.primary, "commit_prepared", txid)
        self._note_write()
        return result

    def abort_prepared(self, txid: int):
        return self._call(self.group.primary, "abort_prepared", txid)

    def in_doubt(self) -> List[int]:
        return self.group.primary.in_doubt()

    def recover_from_wal(self) -> int:
        return self.group.primary.recover_from_wal()

    def count(self, structure_id: int) -> int:
        return self.group.count(structure_id)

    def export_records(self) -> Dict[int, Dict[str, Any]]:
        return self.group.export_records()

    def load_records(self, records: Dict[int, Dict[str, Any]]) -> None:
        self.group.load_records(records)
        self._check_generation()

    def __contains__(self, uid: int) -> bool:
        return uid in self.group
