"""The server side of replication: WAL shipping onto replica stores.

Three pieces, composed by :class:`ReplicationGroup`:

* :class:`ReplicatedPrimary` — an
  :class:`~repro.netsim.server.ObjectServer` whose *every* write verb
  reaches the WAL.  ``commit_batch`` already logs (the base server
  does, when built with a WAL); plain ``store`` gains the same
  log-before-apply framing so single-record writes ship too.  After a
  successful write the primary fires an ``on_commit`` hook, which the
  group uses to poll the shipper synchronously — ship time is the
  commit's virtual time, so staleness is deterministic.
* :class:`WalShipper` — tails the primary's log with the
  offset-resumable :meth:`~repro.engine.wal.WriteAheadLog.read_from`,
  never rescanning shipped bytes.  It frames BEGIN/PUT/COMMIT records
  into whole transactions (a partial transaction — torn tail, crash
  mid-append — never enters the shippable list, which is what makes
  replica apply atomic) and assigns each commit a monotonically
  increasing **LSN**, the unit of the read-your-writes contract.
* :class:`ReplicationGroup` — owns the shared virtual clock, the WAL
  (in-memory by default; crash drills swap in a
  :class:`~repro.engine.vfs.FaultInjectingVFS`), the primary, the
  replicas (each tagged ``replica<i>`` for its own trace lane) and the
  per-replica applied-LSN cursors.  :meth:`ReplicationGroup.catch_up`
  applies every shipped transaction whose
  ``ship_time + apply_lag_seconds`` has passed; :meth:`promote` is the
  failover drill's primary-crash path — the highest-applied-LSN
  replica drains what the surviving log holds and takes over.

Replica apply is *uncharged* admin (the shipping channel is not the
client's wire), but the applied records carry the **origin** commit's
txid as their version, so optimistic read sets built from replica
replies validate at the primary exactly as primary-served reads would.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.vfs import MemoryVFS
from repro.engine.wal import (
    ABORT,
    BEGIN,
    COMMIT,
    LogRecord,
    PUT,
    WriteAheadLog,
    put_record,
)
from repro.errors import InvalidOperationError
from repro.netsim.config import ReplicationConfig
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.server import ObjectServer
from repro.obs import Instrumentation, resolve


class ReplicatedPrimary(ObjectServer):
    """An object server whose whole write surface reaches the WAL.

    The base server logs ``commit_batch`` transactions when built with
    a WAL; this subclass adds the same log-before-apply framing to
    plain ``store`` (the last-writer-wins single-record write), so a
    replication group ships *every* mutation.  Both paths fire the
    ``on_commit`` hook after the write is applied.

    Log-before-apply is the durability contract: a request is only
    acknowledged (and only charged its reply) after its records are in
    the log, so an acked write survives any later crash, and a crash
    *during* logging leaves a torn tail the shipper and recovery both
    ignore — the write was never acked, and it is never applied.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Called (no args) after every applied write; the group wires
        #: this to the shipper's poll so ship time == commit time.
        self.on_commit = None

    def store(self, uid: int, record: Dict[str, Any], from_cache=None) -> None:
        if self.wal is not None:
            txid = self._commit_seq + 1
            self.wal.log_commit(
                txid, [put_record(txid, uid, {"record": record})]
            )
        super().store(uid, record, from_cache=from_cache)
        if self.on_commit is not None:
            self.on_commit()

    def commit_batch(
        self,
        writes: Dict[int, Dict[str, Any]],
        reads: Dict[int, int],
        lists: Optional[Dict[str, List[int]]] = None,
        from_cache=None,
    ) -> Dict[int, int]:
        applied = super().commit_batch(
            writes, reads, lists=lists, from_cache=from_cache
        )
        if writes and self.on_commit is not None:
            self.on_commit()
        return applied


class WalShipper:
    """Offset-resumable tail reader over the primary's commit log.

    Each :meth:`poll` resumes exactly where the previous one stopped
    (no rescan of shipped bytes) and parses frames incrementally: a
    transaction whose COMMIT has not been read yet stays in a pending
    buffer across polls, and a transaction whose COMMIT never arrives
    (crash mid-append, torn tail) is never shipped at all.  Completed
    transactions get consecutive LSNs starting at 1 and remember the
    virtual time they were shipped, which is what a replica's bounded
    apply lag is measured against.
    """

    def __init__(self, wal: WriteAheadLog, clock: SimulatedClock) -> None:
        self.wal = wal
        self.clock = clock
        #: Shippable transactions: ``(lsn, ship_time, [PUT records])``.
        self.txns: List[Tuple[int, float, List[LogRecord]]] = []
        #: LSN of the newest shipped commit (== ``len(self.txns)``).
        self.primary_lsn = 0
        self._offset = 0
        self._pending: Dict[int, List[LogRecord]] = {}

    def poll(self, now: Optional[float] = None) -> int:
        """Tail the log; returns how many new commits became shippable."""
        ship_time = self.clock.now if now is None else now
        shipped = 0
        for record, end_offset in self.wal.read_from(self._offset):
            self._offset = end_offset
            kind = record.kind
            if kind == BEGIN:
                self._pending[record.txid] = []
            elif kind == PUT:
                self._pending.setdefault(record.txid, []).append(record)
            elif kind == COMMIT:
                operations = self._pending.pop(record.txid, [])
                self.primary_lsn += 1
                self.txns.append((self.primary_lsn, ship_time, operations))
                shipped += 1
            elif kind == ABORT:
                self._pending.pop(record.txid, None)
            # PREPARE/CHECKPOINT never appear on a replication primary's
            # log (2PC belongs to sharding; the group never checkpoints
            # a log replicas may still be draining).
        return shipped

    def rebase(self) -> None:
        """Forget everything and resume tailing at the current log end.

        Used when the group bulk-loads a snapshot: the snapshot reaches
        every server out of band, so history before it must not ship.
        """
        self.wal.sync(force=True)
        self._offset = self.wal.vfs.size(self.wal.path)
        self._pending.clear()
        self.txns.clear()
        self.primary_lsn = 0


class _ReplicaState:
    """One replica's shipping cursor (``applied_lsn`` indexes
    ``shipper.txns``: everything up to it has been applied)."""

    __slots__ = ("index", "server", "applied_lsn", "promoted")

    def __init__(self, index: int, server: ObjectServer) -> None:
        self.index = index
        self.server = server
        self.applied_lsn = 0
        self.promoted = False


class ReplicationGroup:
    """A primary, its WAL, N tailing replicas and their cursors.

    The group is the shared server-side deployment; each client wraps
    it in its own :class:`~repro.replication.router.ReplicaRouter`
    (the session LSN token is per-client state).  All timing is
    virtual: commits ship at their commit time, and a replica applies
    a commit once ``ship_time + apply_lag_seconds`` has passed on the
    shared clock, so staleness is deterministic and replayable.

    Args:
        config: replica count and apply lag (the policy field is
            consumed by the router, not the group).
        clock / latency / instrumentation / fault_model: as for
            :class:`~repro.netsim.server.ObjectServer`; the fault
            model applies to the primary only (replicas serve reads
            on their own lanes).
        vfs: filesystem for the primary's WAL — in-memory by default;
            the failover drill passes a
            :class:`~repro.engine.vfs.FaultInjectingVFS` so the
            primary can crash mid-commit.
        wal_path: the WAL's path inside ``vfs``.
        sync_on_commit / group_commit / fsync_seconds: WAL durability
            knobs, as for the base server.
    """

    def __init__(
        self,
        config: Optional[ReplicationConfig] = None,
        *,
        clock: Optional[SimulatedClock] = None,
        latency: Optional[LatencyModel] = None,
        instrumentation: Optional[Instrumentation] = None,
        fault_model: Optional[FaultModel] = None,
        vfs=None,
        wal_path: str = "replication-primary.wal",
        sync_on_commit: bool = True,
        group_commit: bool = False,
        fsync_seconds: float = 0.0,
    ) -> None:
        self.config = config or ReplicationConfig()
        self.clock = clock or SimulatedClock()
        self.latency = latency or LatencyModel()
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        self.vfs = vfs or MemoryVFS()
        self.wal = WriteAheadLog(
            wal_path,
            sync_on_commit=sync_on_commit,
            instrumentation=instrumentation,
            vfs=self.vfs,
            group_commit=group_commit,
        )
        self.primary: ObjectServer = ReplicatedPrimary(
            self.clock,
            latency,
            instrumentation=instrumentation,
            fault_model=fault_model,
            wal=self.wal,
            fsync_seconds=fsync_seconds,
            lane_tag="primary",
        )
        self.shipper = WalShipper(self.wal, self.clock)
        self.primary.on_commit = self._on_primary_commit
        self._states = [
            _ReplicaState(
                index,
                ObjectServer(
                    self.clock,
                    latency,
                    instrumentation=instrumentation,
                    lane_tag=f"replica{index}",
                ),
            )
            for index in range(self.config.replicas)
        ]
        #: Epoch counter: bumped by ``load_records`` and ``promote``.
        #: Routers compare it to invalidate stale session LSN tokens.
        self.generation = 0
        #: True once ``promote`` ran; reads route to the new primary
        #: only (nothing ships to the surviving replicas any more).
        self.failed_over = False
        self._caches: List[Any] = []
        for state in self._states:
            self._instr.gauge(
                f"backend.replica.{state.index}.applied_lsn",
                lambda s=state: float(s.applied_lsn),
            )
            self._instr.gauge(
                f"backend.replica.{state.index}.lag",
                lambda s=state: float(
                    self.shipper.primary_lsn - s.applied_lsn
                ),
            )

    # ------------------------------------------------------------------
    # Shipping and apply
    # ------------------------------------------------------------------

    def _on_primary_commit(self) -> None:
        # Synchronous poll at commit time: the shipper records the
        # commit's own virtual timestamp, making every replica's
        # visibility horizon (ship + lag) deterministic.
        self.shipper.poll(self.clock.now)

    @property
    def replicas(self) -> List[ObjectServer]:
        """The replica servers still serving as replicas."""
        return [s.server for s in self._states if not s.promoted]

    @property
    def applied_lsns(self) -> List[int]:
        """Applied LSN per replica, in replica-index order."""
        return [s.applied_lsn for s in self._states]

    @property
    def promoted_index(self) -> Optional[int]:
        """Index of the replica promoted to primary, or ``None``."""
        for state in self._states:
            if state.promoted:
                return state.index
        return None

    def catch_up(self, now: Optional[float] = None) -> None:
        """Apply every shipped commit whose visibility time has passed.

        Replicas apply strictly in LSN order; each transaction applies
        atomically (the shipper only ships complete transactions).
        """
        horizon = self.clock.now if now is None else now
        self.shipper.poll(horizon)
        lag = self.config.apply_lag_seconds
        txns = self.shipper.txns
        for state in self._states:
            if state.promoted:
                continue
            while state.applied_lsn < len(txns):
                lsn, ship_time, operations = txns[state.applied_lsn]
                if ship_time + lag > horizon:
                    break
                state.server.apply_wal_operations(operations)
                state.applied_lsn = lsn
                self._instr.count("backend.replica.applied_txns")

    def eligible_replicas(self, session_lsn: int) -> List[_ReplicaState]:
        """Replicas fresh enough for a client's session LSN token.

        Catches up first (apply is driven by reads — there is no
        background thread in virtual time).  After a failover nothing
        ships any more, so the answer is always empty and every read
        falls back to the (new) primary.
        """
        self.catch_up()
        if self.failed_over:
            return []
        return [
            state
            for state in self._states
            if not state.promoted and state.applied_lsn >= session_lsn
        ]

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def promote(self) -> ObjectServer:
        """Primary crashed: promote the highest-applied-LSN replica.

        Drains whatever complete transactions the *surviving* log
        bytes hold (the log is readable after a simulated crash; a
        torn tail simply ends the scan) into every replica — promotion
        may wait for apply, so lag is waived — then the replica with
        the highest applied LSN (lowest index on ties) becomes the new
        primary: caches re-subscribe to it, routers observe the
        generation bump and re-route.

        The whole election runs inside a ``replication.failover`` span
        so the exported Chrome trace shows the failover gap.
        """
        if self.failed_over:
            raise InvalidOperationError("group already failed over")
        with self._instr.span("replication.failover"):
            self.shipper.poll(self.clock.now)
            txns = self.shipper.txns
            for state in self._states:
                while state.applied_lsn < len(txns):
                    lsn, _ship_time, operations = txns[state.applied_lsn]
                    state.server.apply_wal_operations(operations)
                    state.applied_lsn = lsn
            winner = max(
                self._states, key=lambda s: (s.applied_lsn, -s.index)
            )
            winner.promoted = True
            old_primary = self.primary
            self.primary = winner.server
            for cache in self._caches:
                old_primary.unsubscribe(cache)
                winner.server.subscribe(cache)
            self.failed_over = True
            self.generation += 1
            self._instr.count("backend.replica.promotions")
            self._instr.set_gauge(
                "backend.replica.promoted_index", float(winner.index)
            )
        return winner.server

    # ------------------------------------------------------------------
    # Administration (uncharged)
    # ------------------------------------------------------------------

    def subscribe(self, cache) -> None:
        """Caches subscribe to the primary only — that is where every
        invalidating write lands (replica apply is not a client write).
        The group remembers them so a promotion can re-subscribe."""
        self._caches.append(cache)
        self.primary.subscribe(cache)

    def unsubscribe(self, cache) -> None:
        if cache in self._caches:
            self._caches.remove(cache)
        self.primary.unsubscribe(cache)

    def load_records(self, records: Dict[int, Dict[str, Any]]) -> None:
        """Load one snapshot into the primary *and* every replica.

        The snapshot travels out of band (it is the benchmark loader's
        admin path), so the shipper rebases past any log history and
        the generation bump resets every router's session token.
        """
        self.primary.load_records(records)
        for state in self._states:
            state.server.load_records(records)
            state.applied_lsn = 0
        self.shipper.rebase()
        self.generation += 1

    def export_records(self) -> Dict[int, Dict[str, Any]]:
        return self.primary.export_records()

    def count(self, structure_id: int) -> int:
        return self.primary.count(structure_id)

    def __contains__(self, uid: int) -> bool:
        return uid in self.primary

    @contextlib.contextmanager
    def use_transport(self, transport):
        """Swap charge transports on the primary and every replica.

        Accepts one transport (everything behind one NIC) or a
        sequence of ``1 + replicas`` lanes — ``[primary, replica0,
        replica1, …]``, see :func:`repro.netsim.sim.replica_lanes`.
        """
        servers = [self.primary] + [
            s.server for s in self._states if not s.promoted
        ]
        lanes = getattr(transport, "lanes", None)
        if lanes is None:
            if isinstance(transport, (list, tuple)):
                lanes = list(transport)
            else:
                lanes = [transport] * len(servers)
        if len(lanes) != len(servers):
            raise InvalidOperationError(
                f"{len(lanes)} transports for {len(servers)} servers"
            )
        with contextlib.ExitStack() as stack:
            for server, lane in zip(servers, lanes):
                stack.enter_context(server.use_transport(lane))
            yield lanes
