"""Read-scale replication: WAL shipping plus replica-routed reads.

The primary :class:`~repro.netsim.server.ObjectServer` logs every
commit to its write-ahead log; a :class:`~repro.replication.group.WalShipper`
tails that log through the VFS seam and replays committed transactions
onto N replica servers, each a plain ``ObjectServer`` with its own
transport lane.  A per-client
:class:`~repro.replication.router.ReplicaRouter` then routes the read
verb surface (``fetch``/``fetch_many``/``traverse``/``readahead``) to
replicas under a pluggable policy while every write still lands on the
primary, with read-your-writes enforced through session LSN tokens.
See ``docs/replication.md`` for the architecture and contracts.
"""

from repro.replication.group import (
    ReplicatedPrimary,
    ReplicationGroup,
    WalShipper,
)
from repro.replication.router import ReplicaRouter

__all__ = [
    "ReplicatedPrimary",
    "ReplicationGroup",
    "WalShipper",
    "ReplicaRouter",
]
