"""A shared/exclusive lock manager with deadlock detection (R8).

Locks are held per object id at transaction granularity, following
strict two-phase locking: a transaction acquires locks as it touches
objects and releases everything at commit or abort.

Deadlocks are detected with a waits-for graph: before blocking, the
requester adds edges to every current holder and a cycle check runs; a
request that would close a cycle raises :class:`DeadlockError`
immediately (the requester is the victim).  A wall-clock timeout is the
backstop for lost wakeups.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Optional, Set

from repro.errors import DeadlockError


class LockMode(enum.Enum):
    """Lock compatibility: S is shared with S; X is exclusive."""

    SHARED = "S"
    EXCLUSIVE = "X"


class _LockState:
    __slots__ = ("holders", "mode", "condition")

    def __init__(self, lock: threading.Lock) -> None:
        self.holders: Set[int] = set()
        self.mode: Optional[LockMode] = None
        self.condition = threading.Condition(lock)


class LockManager:
    """Per-object S/X locks shared by all transactions of one store."""

    def __init__(self, timeout: float = 5.0) -> None:
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._locks: Dict[int, _LockState] = {}
        self._held: Dict[int, Set[int]] = {}  # txid -> oids
        self._waits_for: Dict[int, Set[int]] = {}  # txid -> blocking txids

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def _compatible(self, state: _LockState, txid: int, mode: LockMode) -> bool:
        if not state.holders:
            return True
        if state.holders == {txid}:
            return True  # upgrade handled by caller
        if mode is LockMode.SHARED and state.mode is LockMode.SHARED:
            return True
        return False

    def _would_deadlock(self, txid: int) -> bool:
        """DFS over the waits-for graph looking for a cycle through txid."""
        stack = list(self._waits_for.get(txid, ()))
        seen: Set[int] = set()
        while stack:
            current = stack.pop()
            if current == txid:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waits_for.get(current, ()))
        return False

    def acquire(self, txid: int, oid: int, mode: LockMode) -> None:
        """Acquire (or upgrade) a lock on ``oid`` for ``txid``.

        Raises:
            DeadlockError: if waiting would deadlock, or on timeout.
        """
        with self._mutex:
            state = self._locks.get(oid)
            if state is None:
                state = self._locks[oid] = _LockState(self._mutex)

            while True:
                if txid in state.holders:
                    if mode is LockMode.SHARED or state.mode is LockMode.EXCLUSIVE:
                        return  # already sufficient
                    if state.holders == {txid}:
                        state.mode = LockMode.EXCLUSIVE  # upgrade
                        return
                elif self._compatible(state, txid, mode):
                    state.holders.add(txid)
                    if state.mode is None or mode is LockMode.EXCLUSIVE:
                        state.mode = mode
                    self._held.setdefault(txid, set()).add(oid)
                    return

                blockers = state.holders - {txid}
                self._waits_for[txid] = set(blockers)
                if self._would_deadlock(txid):
                    del self._waits_for[txid]
                    raise DeadlockError(
                        f"transaction {txid} would deadlock on object {oid}"
                    )
                signalled = state.condition.wait(self.timeout)
                self._waits_for.pop(txid, None)
                if not signalled:
                    raise DeadlockError(
                        f"transaction {txid} timed out waiting for object {oid}"
                    )

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release_all(self, txid: int) -> None:
        """Release every lock held by ``txid`` (end of transaction)."""
        with self._mutex:
            for oid in self._held.pop(txid, set()):
                state = self._locks.get(oid)
                if state is None:
                    continue
                state.holders.discard(txid)
                if not state.holders:
                    state.mode = None
                state.condition.notify_all()
            self._waits_for.pop(txid, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders_of(self, oid: int) -> Set[int]:
        """Transactions currently holding a lock on ``oid``."""
        with self._mutex:
            state = self._locks.get(oid)
            return set(state.holders) if state else set()

    def locks_held(self, txid: int) -> Set[int]:
        """Objects currently locked by ``txid``."""
        with self._mutex:
            return set(self._held.get(txid, set()))
