"""Clustering along the 1-N aggregation hierarchy (section 5.2).

The paper: *"If the system supports clustering, clustering should be
done along the 1-N relationship-hierarchy"*, predicting that a
clustered ``closure1N`` will out-perform ``closureMN`` when cold.

The engine implements clustering through heap **placement hints**: a
new or relocated object is placed on (or next to) the page of a target
object.  The OODB backend passes the parent as the hint when a child is
attached, so a subtree ends up occupying few contiguous pages and a
cold 1-N closure faults a handful of pages instead of one per object.

:func:`clustering_factor` quantifies the effect for the ablation
benchmark: the number of distinct pages a set of objects occupies,
normalized by the minimum possible.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class ClusterStats:
    """Physical locality of a set of objects."""

    objects: int
    distinct_pages: int
    min_pages: int

    @property
    def factor(self) -> float:
        """distinct pages / minimum pages; 1.0 is perfectly clustered."""
        return self.distinct_pages / self.min_pages if self.min_pages else 1.0


class ClusteringPolicy:
    """Decides the heap placement hint for new and relocated objects.

    ``enabled=False`` degrades every decision to "no hint", which is
    the unclustered ablation arm (`oodb-unclustered` backend).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hints_applied = 0
        self.relocations = 0

    def hint_for_new(self, near_oid: Optional[int]) -> Optional[int]:
        """The OID whose page a new object should be placed on."""
        if not self.enabled or near_oid is None:
            return None
        self.hints_applied += 1
        return near_oid

    def should_relocate(self, near_oid: Optional[int]) -> bool:
        """Whether attaching to a parent should move the child near it."""
        if not self.enabled or near_oid is None:
            return False
        self.relocations += 1
        return True


def clustering_factor(
    pages: Sequence[int], objects_per_page_estimate: float
) -> ClusterStats:
    """Measure how clustered a set of objects is.

    Args:
        pages: the page id of each object (one entry per object).
        objects_per_page_estimate: how many such objects fit a page,
            used to compute the minimum achievable page count.

    Returns:
        A :class:`ClusterStats` whose ``factor`` is ~1.0 for a
        perfectly clustered set and grows toward ``len(pages)`` /
        ``min_pages`` for a fully scattered one.
    """
    count = len(pages)
    if count == 0:
        return ClusterStats(0, 0, 0)
    if objects_per_page_estimate <= 0:
        raise ValueError("objects_per_page_estimate must be positive")
    minimum = max(1, math.ceil(count / objects_per_page_estimate))
    return ClusterStats(count, len(set(pages)), minimum)


def run_length_locality(pages: Iterable[int]) -> float:
    """Fraction of consecutive accesses that stay on the same page.

    A traversal emitting the page id of each object visited scores
    close to 1.0 when clustered (long same-page runs) and close to 0.0
    when every step faults a different page.
    """
    page_list: List[int] = list(pages)
    if len(page_list) < 2:
        return 1.0
    same = sum(
        1 for a, b in zip(page_list, page_list[1:]) if a == b
    )
    return same / (len(page_list) - 1)
