"""Heap files: variable-length records with placement hints.

A heap file is a chain of slotted pages (linked through each page's
reserved header word).  Records are addressed by a **RID** packing the
page id and slot number into one integer, so RIDs are storable wherever
an integer is (B+tree values, serialized object state).

Two features matter for the benchmark:

* **Placement hints** — ``insert(data, near=rid)`` tries to place the
  record on the same page as ``near``.  The clustering policy uses this
  to keep a 1-N subtree physically together, which is precisely the
  effect the paper predicts will make ``closure1N`` beat ``closureMN``.
* **Overflow chains** — a record larger than a page (a 400x400 form
  bitmap is ~20 KiB) is stored as a stub record pointing at a chain of
  dedicated overflow pages.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.engine import slotted
from repro.engine.buffer import BufferPool
from repro.engine.pages import PAGE_SIZE, PageId
from repro.errors import PageError, RecordNotFoundError

#: A record id: (page id << 16) | slot.
Rid = int

_SLOT_BITS = 16
_SLOT_MASK = (1 << _SLOT_BITS) - 1

_INLINE = 0
_OVERFLOW = 1

#: Overflow stub payload: total length + first overflow page id.
_OVERFLOW_STUB = struct.Struct("<QQ")

#: Overflow page header: next page id + bytes used on this page.
_OVERFLOW_HEADER = struct.Struct("<QI")
_OVERFLOW_CAPACITY = PAGE_SIZE - _OVERFLOW_HEADER.size

#: Next-page chain link lives in the slotted header's reserved word.
_NEXT_LINK = struct.Struct("<I")
_NEXT_LINK_OFFSET = 4  # after slot_count (H) + record_end (H)


def make_rid(pid: PageId, slot: int) -> Rid:
    """Pack a page id and slot number into a RID."""
    return (pid << _SLOT_BITS) | slot


def rid_page(rid: Rid) -> PageId:
    """Extract the page id from a RID."""
    return rid >> _SLOT_BITS


def rid_slot(rid: Rid) -> int:
    """Extract the slot number from a RID."""
    return rid & _SLOT_MASK


def _get_next(page: bytearray) -> PageId:
    (next_pid,) = _NEXT_LINK.unpack_from(page, _NEXT_LINK_OFFSET)
    return next_pid


def _set_next(page: bytearray, pid: PageId) -> None:
    _NEXT_LINK.pack_into(page, _NEXT_LINK_OFFSET, pid)


class HeapFile:
    """One named heap of records inside a database file.

    The head and tail page ids persist as named roots of the page file
    (``<name>.head`` / ``<name>.tail``) so opening a heap never scans
    the chain — keeping a freshly opened database genuinely cold.
    """

    def __init__(self, pool: BufferPool, name: str) -> None:
        self._pool = pool
        self.name = name
        self._head_root = f"{name}.head"
        self._tail_root = f"{name}.tail"
        file = pool._file
        self._head: PageId = file.get_root(self._head_root, 0)
        self._tail: PageId = file.get_root(self._tail_root, 0)
        #: Full hint page -> the clustered continuation page spliced
        #: after it.  A volatile optimization: losing it only costs
        #: placement quality, never correctness.
        self._continuations: dict = {}
        if not self._head:
            self._head = self._new_heap_page()
            self._tail = self._head
        self._save_roots()

    def _save_roots(self) -> None:
        file = self._pool._file
        file.set_root(self._head_root, self._head)
        file.set_root(self._tail_root, self._tail)

    def _new_heap_page(self) -> PageId:
        pid = self._pool.new_page()
        page = self._pool.get(pid)
        try:
            slotted.init_page(page)
            _set_next(page, 0)
        finally:
            self._pool.unpin(pid, dirty=True)
        return pid

    def _append_page(self) -> PageId:
        pid = self._new_heap_page()
        tail_page = self._pool.get(self._tail)
        try:
            _set_next(tail_page, pid)
        finally:
            self._pool.unpin(self._tail, dirty=True)
        self._tail = pid
        self._save_roots()
        return pid

    def _splice_page_after(self, anchor_pid: PageId) -> PageId:
        """Insert a fresh page into the chain right after ``anchor_pid``.

        Used when a placement hint's page is full: the new page keeps
        the clustered records physically adjacent in scan order.
        """
        pid = self._new_heap_page()
        anchor_page = self._pool.get(anchor_pid)
        try:
            successor = _get_next(anchor_page)
            _set_next(anchor_page, pid)
        finally:
            self._pool.unpin(anchor_pid, dirty=True)
        new_page = self._pool.get(pid)
        try:
            _set_next(new_page, successor)
        finally:
            self._pool.unpin(pid, dirty=True)
        if anchor_pid == self._tail:
            self._tail = pid
        self._save_roots()
        return pid

    # ------------------------------------------------------------------
    # Record encoding (inline vs overflow)
    # ------------------------------------------------------------------

    def _encode_inline(self, data: bytes) -> bytes:
        return bytes([_INLINE]) + data

    def _write_overflow_chain(self, data: bytes) -> PageId:
        first = 0
        previous = 0
        for start in range(0, len(data), _OVERFLOW_CAPACITY):
            chunk = data[start : start + _OVERFLOW_CAPACITY]
            pid = self._pool.new_page()
            page = self._pool.get(pid)
            try:
                _OVERFLOW_HEADER.pack_into(page, 0, 0, len(chunk))
                page[
                    _OVERFLOW_HEADER.size : _OVERFLOW_HEADER.size + len(chunk)
                ] = chunk
            finally:
                self._pool.unpin(pid, dirty=True)
            if previous:
                prev_page = self._pool.get(previous)
                try:
                    _used = _OVERFLOW_HEADER.unpack_from(prev_page, 0)[1]
                    _OVERFLOW_HEADER.pack_into(prev_page, 0, pid, _used)
                finally:
                    self._pool.unpin(previous, dirty=True)
            else:
                first = pid
            previous = pid
        return first

    def _read_overflow_chain(self, first: PageId, total: int) -> bytes:
        parts = []
        pid = first
        remaining = total
        while pid and remaining > 0:
            page = self._pool.get(pid)
            try:
                next_pid, used = _OVERFLOW_HEADER.unpack_from(page, 0)
                parts.append(
                    bytes(page[_OVERFLOW_HEADER.size : _OVERFLOW_HEADER.size + used])
                )
                remaining -= used
            finally:
                self._pool.unpin(pid)
            pid = next_pid
        if remaining != 0:
            raise PageError("overflow chain length mismatch")
        return b"".join(parts)

    def _free_overflow_chain(self, first: PageId) -> None:
        pid = first
        while pid:
            page = self._pool.get(pid)
            try:
                next_pid, _used = _OVERFLOW_HEADER.unpack_from(page, 0)
            finally:
                self._pool.unpin(pid)
            self._pool.free_page(pid)
            pid = next_pid

    def _make_record(self, data: bytes) -> bytes:
        if len(data) + 1 <= slotted.MAX_RECORD_SIZE:
            return self._encode_inline(data)
        first = self._write_overflow_chain(data)
        stub = bytearray(1 + _OVERFLOW_STUB.size)
        stub[0] = _OVERFLOW
        _OVERFLOW_STUB.pack_into(stub, 1, len(data), first)
        return bytes(stub)

    def _decode_record(self, raw: bytes) -> bytes:
        """Decode a raw slotted record to its payload.

        ``raw`` may be a zero-copy ``memoryview`` into a page frame; an
        inline record's payload is then itself a view (valid until the
        page is next mutated), while overflow payloads are always owned
        bytes reassembled from the chain.
        """
        if raw[0] == _INLINE:
            return raw[1:]
        if raw[0] == _OVERFLOW:
            total, first = _OVERFLOW_STUB.unpack_from(raw, 1)
            return self._read_overflow_chain(first, total)
        raise PageError(f"unknown record tag {raw[0]}")

    def _release_record(self, raw: bytes) -> None:
        """Free overflow pages owned by a record being deleted/replaced."""
        if raw[0] == _OVERFLOW:
            _total, first = _OVERFLOW_STUB.unpack_from(raw, 1)
            self._free_overflow_chain(first)

    #: Bytes of a raw record that _release_record ever looks at: the
    #: tag plus, for overflow records, the (length, first page) stub.
    _RELEASE_PREFIX = 1 + _OVERFLOW_STUB.size

    # ------------------------------------------------------------------
    # Public record operations
    # ------------------------------------------------------------------

    def insert(self, data: bytes, near: Optional[Rid] = None) -> Rid:
        """Insert a record, preferring the page of ``near`` if given.

        Falls back to the tail page, then appends a new page.  Returns
        the new record's RID.
        """
        return self.insert_encoded(self._make_record(data), near=near)

    def read(self, rid: Rid) -> bytes:
        """Read the record at ``rid``.

        Inline records come back as a zero-copy ``memoryview`` into the
        (unpinned but unmodified) page frame; overflow records are
        owned bytes.  Decode or copy the payload before the next heap
        mutation.

        Raises:
            RecordNotFoundError: if the slot is deleted or out of range.
        """
        pid, slot = rid_page(rid), rid_slot(rid)
        page = self._pool.get(pid)
        try:
            raw = slotted.read(page, slot)
        except PageError:
            raise RecordNotFoundError(rid) from None
        finally:
            self._pool.unpin(pid)
        return self._decode_record(raw)

    def update(self, rid: Rid, data: bytes) -> Rid:
        """Replace the record at ``rid``; may relocate.

        Returns the (possibly new) RID.  Callers that store RIDs
        elsewhere (the object directory) must record the returned
        value.
        """
        pid, slot = rid_page(rid), rid_slot(rid)
        record = self._make_record(data)
        page = self._pool.get(pid)
        try:
            try:
                # slotted.read returns a view into the page and
                # slotted.update may move/overwrite the old bytes, so
                # copy the prefix _release_record needs *before*
                # mutating.
                old_head = bytes(
                    slotted.read(page, slot)[: self._RELEASE_PREFIX]
                )
            except PageError:
                raise RecordNotFoundError(rid) from None
            fitted = slotted.update(page, slot, record)
        finally:
            self._pool.unpin(pid, dirty=True)
        self._release_record(old_head)
        if fitted:
            return rid
        # Relocate: delete here, insert elsewhere (same-page hint first).
        page = self._pool.get(pid)
        try:
            slotted.delete(page, slot)
        finally:
            self._pool.unpin(pid, dirty=True)
        return self.insert_encoded(record, near=rid)

    def insert_encoded(self, record: bytes, near: Optional[Rid] = None) -> Rid:
        """Insert an already-encoded record, honouring placement hints.

        With a ``near`` hint the record goes onto the hint's page, its
        recorded continuation page, or a fresh page spliced right after
        the hint's — so clustered records stay adjacent in the chain.
        Without a hint it goes to the tail, appending as needed.
        """
        if near is not None:
            anchor_pid = rid_page(near)
            candidates = [anchor_pid]
            continuation = self._continuations.get(anchor_pid)
            if continuation is not None:
                candidates.append(continuation)
            slot_pid = self._try_insert(candidates, record)
            if slot_pid is not None:
                return slot_pid
            pid = self._splice_page_after(
                continuation if continuation is not None else anchor_pid
            )
            self._continuations[anchor_pid] = pid
            return self._must_insert(pid, record)

        slot_pid = self._try_insert([self._tail], record)
        if slot_pid is not None:
            return slot_pid
        return self._must_insert(self._append_page(), record)

    def _try_insert(self, pids, record: bytes) -> Optional[Rid]:
        for pid in pids:
            page = self._pool.get(pid)
            slot = None
            try:
                if slotted.can_insert(page, len(record)):
                    slot = slotted.insert(page, record)
            finally:
                self._pool.unpin(pid, dirty=slot is not None)
            if slot is not None:
                return make_rid(pid, slot)
        return None

    def _must_insert(self, pid: PageId, record: bytes) -> Rid:
        page = self._pool.get(pid)
        try:
            slot = slotted.insert(page, record)
        finally:
            self._pool.unpin(pid, dirty=True)
        return make_rid(pid, slot)

    def delete(self, rid: Rid) -> None:
        """Delete the record at ``rid`` (freeing any overflow chain)."""
        pid, slot = rid_page(rid), rid_slot(rid)
        page = self._pool.get(pid)
        try:
            try:
                raw = bytes(
                    slotted.read(page, slot)[: self._RELEASE_PREFIX]
                )
            except PageError:
                raise RecordNotFoundError(rid) from None
            slotted.delete(page, slot)
        finally:
            self._pool.unpin(pid, dirty=True)
        self._release_record(raw)

    def read_many(self, rids) -> "dict":
        """Read many records with one page pin per distinct page.

        Returns ``{rid: payload}``.  Inline payloads are zero-copy
        views (see :meth:`read`); the caller must decode or copy them
        before the next heap mutation.

        Raises:
            RecordNotFoundError: if any slot is deleted or out of range.
        """
        by_page: dict = {}
        for rid in rids:
            by_page.setdefault(rid >> _SLOT_BITS, []).append(rid)
        raws: dict = {}
        for pid in sorted(by_page):
            page = self._pool.get(pid)
            try:
                for rid in by_page[pid]:
                    try:
                        raws[rid] = slotted.read(page, rid & _SLOT_MASK)
                    except PageError:
                        raise RecordNotFoundError(rid) from None
            finally:
                self._pool.unpin(pid)
        # Decode after all directory pins are released: overflow chains
        # re-enter the pool, and nothing here mutates pages, so the
        # inline views stay valid.
        return {rid: self._decode_record(raw) for rid, raw in raws.items()}

    def scan(self) -> Iterator[Tuple[Rid, bytes]]:
        """Iterate every live record in physical (page-chain) order."""
        pid = self._head
        while pid:
            page = self._pool.get(pid)
            try:
                # Copy while pinned: the consumer may mutate the heap
                # between yields, which would invalidate page views.
                entries = [
                    (slot, bytes(raw))
                    for slot, raw in slotted.records(page)
                ]
                next_pid = _get_next(page)
            finally:
                self._pool.unpin(pid)
            for slot, raw in entries:
                yield make_rid(pid, slot), self._decode_record(raw)
            pid = next_pid

    def page_of(self, rid: Rid) -> PageId:
        """The page a RID lives on (used by the clustering policy)."""
        return rid_page(rid)

    def page_ids(self) -> Iterator[PageId]:
        """Iterate the heap's page chain (for statistics and tests)."""
        pid = self._head
        while pid:
            page = self._pool.get(pid)
            try:
                next_pid = _get_next(page)
            finally:
                self._pool.unpin(pid)
            yield pid
            pid = next_pid
