"""Fixed-size page I/O: the bottom layer of the storage engine.

A database is one file of 4 KiB pages.  Page 0 is the *header page*
holding the magic number, the format version, the page count and a
small number of named root pointers (catalog root, directory root,
next OID, ...) that the upper layers bootstrap from.

:class:`PageFile` does raw page reads/writes and allocation;
free-page recycling is handled here through a simple free-list whose
head lives in the header.

All file access goes through an injected :class:`~repro.engine.vfs.VFS`
(defaulting to :class:`~repro.engine.vfs.RealVFS`), so fault-injection
and I/O-counting decorators observe every byte this layer moves.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.engine.vfs import VFS, VFSFile, RealVFS
from repro.errors import PageError

#: Size of every page in bytes.
PAGE_SIZE = 4096

#: Magic number identifying a HyperModel engine file ("HMDB").
MAGIC = 0x484D4442

#: On-disk format version.
FORMAT_VERSION = 1

#: struct layout of the header page prefix: magic, version, page count,
#: free-list head, root-slot count.
_HEADER_PREFIX = struct.Struct("<IIQQI")

#: Each named root: 16-byte name + uint64 value.
_ROOT_SLOT = struct.Struct("<16sQ")

_MAX_ROOTS = 32

#: A page id; 0 is the header and is never handed to upper layers.
PageId = int

#: Free pages are chained through their first 8 bytes.
_FREE_NEXT = struct.Struct("<Q")


class PageFile:
    """Raw page-granular access to one database file.

    The file is created on first open if it does not exist.  All reads
    and writes go through here; the buffer pool is the only intended
    client.  ``sync`` forces the OS to flush, which the store calls at
    commit boundaries.
    """

    def __init__(self, path: str, vfs: Optional[VFS] = None) -> None:
        self.path = path
        self.vfs = vfs or RealVFS()
        self._file: Optional[VFSFile] = None
        self._page_count = 0
        self._free_head: PageId = 0
        self._roots: Dict[str, int] = {}
        self._open()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _open(self) -> None:
        fresh = not self.vfs.exists(self.path) or self.vfs.size(self.path) == 0
        self._file = self.vfs.open(self.path, "r+b" if not fresh else "w+b")
        if fresh:
            self._page_count = 1
            self._free_head = 0
            self._roots = {}
            self._write_header()
        else:
            self._read_header()

    def close(self) -> None:
        """Flush the header and close the file."""
        if self._file is not None:
            self._write_header()
            self._file.close()
            self._file = None

    @property
    def is_open(self) -> bool:
        """Whether the underlying file handle is open."""
        return self._file is not None

    def sync(self) -> None:
        """Flush the header and fsync the file (durability point)."""
        self._write_header()
        self._file.sync()

    # ------------------------------------------------------------------
    # Header management
    # ------------------------------------------------------------------

    def _write_header(self) -> None:
        if self._file is None:
            return
        page = bytearray(PAGE_SIZE)
        _HEADER_PREFIX.pack_into(
            page,
            0,
            MAGIC,
            FORMAT_VERSION,
            self._page_count,
            self._free_head,
            len(self._roots),
        )
        offset = _HEADER_PREFIX.size
        for name, value in self._roots.items():
            _ROOT_SLOT.pack_into(page, offset, name.encode("ascii"), value)
            offset += _ROOT_SLOT.size
        self._file.seek(0)
        self._file.write(page)

    def _read_header(self) -> None:
        self._file.seek(0)
        page = self._file.read(PAGE_SIZE)
        if len(page) < PAGE_SIZE:
            raise PageError(f"{self.path}: truncated header page")
        magic, version, count, free_head, root_count = _HEADER_PREFIX.unpack_from(
            page, 0
        )
        if magic != MAGIC:
            raise PageError(f"{self.path}: not a HyperModel engine file")
        if version != FORMAT_VERSION:
            raise PageError(
                f"{self.path}: format version {version}, expected {FORMAT_VERSION}"
            )
        self._page_count = count
        self._free_head = free_head
        self._roots = {}
        offset = _HEADER_PREFIX.size
        for _ in range(root_count):
            raw_name, value = _ROOT_SLOT.unpack_from(page, offset)
            offset += _ROOT_SLOT.size
            self._roots[raw_name.rstrip(b"\x00").decode("ascii")] = value

    # ------------------------------------------------------------------
    # Named roots (bootstrap pointers for upper layers)
    # ------------------------------------------------------------------

    def get_root(self, name: str, default: int = 0) -> int:
        """Read a named root pointer from the header."""
        return self._roots.get(name, default)

    def set_root(self, name: str, value: int) -> None:
        """Set a named root pointer (persisted on the next sync/close).

        Raises:
            PageError: if the name exceeds 16 ASCII bytes or the table
                is full.
        """
        if len(name.encode("ascii")) > 16:
            raise PageError(f"root name {name!r} longer than 16 bytes")
        if len(self._roots) >= _MAX_ROOTS and name not in self._roots:
            raise PageError("root pointer table is full")
        self._roots[name] = value

    def roots_snapshot(self) -> Dict[str, int]:
        """Copy of the whole root-pointer table (logged at commit)."""
        return dict(self._roots)

    def restore_roots(self, roots: Dict[str, int]) -> None:
        """Replace the root table (recovery replay)."""
        self._roots = dict(roots)

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------

    def _check_pid(self, pid: PageId) -> None:
        if not 1 <= pid < self._page_count:
            raise PageError(
                f"page id {pid} outside 1..{self._page_count - 1}"
            )

    def read_page(self, pid: PageId) -> bytearray:
        """Read one page; returns a fresh mutable buffer."""
        self._check_pid(pid)
        self._file.seek(pid * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) < PAGE_SIZE:
            raise PageError(f"short read on page {pid}")
        return bytearray(data)

    def write_page(self, pid: PageId, data: bytes) -> None:
        """Write one full page."""
        self._check_pid(pid)
        if len(data) != PAGE_SIZE:
            raise PageError(
                f"page write of {len(data)} bytes, expected {PAGE_SIZE}"
            )
        self._file.seek(pid * PAGE_SIZE)
        self._file.write(data)

    def write_page_extending(self, pid: PageId, data: bytes) -> None:
        """Write a page, growing the file if needed (recovery replay).

        A crash can lose the header's page count while replayable page
        images reference pages past it; recovery uses this entry point
        to restore them.
        """
        if pid < 1:
            raise PageError(f"invalid page id {pid}")
        if len(data) != PAGE_SIZE:
            raise PageError(
                f"page write of {len(data)} bytes, expected {PAGE_SIZE}"
            )
        if pid >= self._page_count:
            self._page_count = pid + 1
        self._file.seek(pid * PAGE_SIZE)
        self._file.write(data)

    def allocate(self) -> PageId:
        """Allocate a page, recycling the free list before growing."""
        if self._free_head:
            pid = self._free_head
            page = self.read_page(pid)
            (self._free_head,) = _FREE_NEXT.unpack_from(page, 0)
            return pid
        pid = self._page_count
        self._page_count += 1
        self._file.seek(pid * PAGE_SIZE)
        self._file.write(b"\x00" * PAGE_SIZE)
        return pid

    def free(self, pid: PageId) -> None:
        """Return a page to the free list."""
        self._check_pid(pid)
        page = bytearray(PAGE_SIZE)
        _FREE_NEXT.pack_into(page, 0, self._free_head)
        self.write_page(pid, page)
        self._free_head = pid

    @property
    def page_count(self) -> int:
        """Total pages in the file, including the header page."""
        return self._page_count
