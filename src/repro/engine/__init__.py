"""A from-scratch object database engine (the OODB substrate).

The paper benchmarked commercial object-oriented DBMSs (GemStone,
Vbase).  This package is the reproduction's stand-in: a single-file
object store built from first principles —

* fixed-size **pages** with a **slotted record layout**
  (:mod:`repro.engine.pages`, :mod:`repro.engine.slotted`);
* an LRU **buffer pool** with pin counts and hit/miss statistics
  (:mod:`repro.engine.buffer`);
* a **heap file** with free-space tracking and placement hints for
  clustering (:mod:`repro.engine.heap`);
* **B+tree** indexes with duplicate support and range scans
  (:mod:`repro.engine.btree`);
* a tag-based binary **serializer** for object state
  (:mod:`repro.engine.serializer`);
* a redo-only **write-ahead log** with checkpoints, recovery and
  optional group commit (:mod:`repro.engine.wal`);
* a pluggable **virtual file system** seam with I/O counting and
  deterministic fault injection (:mod:`repro.engine.vfs`);
* a **lock manager** (S/X, deadlock detection) and **transactions**
  with deferred write sets (:mod:`repro.engine.locks`,
  :mod:`repro.engine.txn`);
* a persistent **class catalog** with dynamic schema evolution
  (:mod:`repro.engine.catalog`);
* **version chains** for temporal access (:mod:`repro.engine.versioning`);
* the :class:`~repro.engine.store.ObjectStore` facade tying it together,
  with a 1-N **clustering policy** (:mod:`repro.engine.clustering`).

The engine deliberately exhibits the performance axes the HyperModel
probes: object faulting through a cache, index-assisted lookups,
clustering along the aggregation hierarchy, and commit cost.
"""

from repro.engine.store import ObjectStore, StoreStats
from repro.engine.catalog import ClassDefinition, FieldDefinition
from repro.engine.vfs import (
    VFS,
    VFSFile,
    RealVFS,
    CountingVFS,
    FaultInjectingVFS,
    SimulatedCrash,
)

__all__ = [
    "ObjectStore",
    "StoreStats",
    "ClassDefinition",
    "FieldDefinition",
    "VFS",
    "VFSFile",
    "RealVFS",
    "CountingVFS",
    "FaultInjectingVFS",
    "SimulatedCrash",
]
