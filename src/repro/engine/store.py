"""The object store facade: OIDs, classes, indexes, transactions.

:class:`ObjectStore` ties the engine together.  Its design in one
paragraph: objects are dictionaries validated against the persistent
:class:`~repro.engine.catalog.Catalog`; each object has a stable **OID**
resolved through a B+tree *directory* to a heap RID; per-class
*extents* and per-field *indexes* are further B+trees; transactions
buffer writes in memory (deferred update) and commit by logging the
dirtied page images to the write-ahead log, fsyncing, then forcing the
pages — so recovery is a pure physical redo.  Clustering places objects
near a designated neighbour's page; versioned stores preserve each
object's pre-state in a timestamped chain.

The stats the benchmark cares about (page faults, cache hits, commit
counts) surface through :class:`StoreStats`.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine import serializer, wal as wal_mod
from repro.engine.btree import BTree
from repro.engine.buffer import BufferPool
from repro.engine.catalog import Catalog, ClassDefinition, FieldDefinition
from repro.engine.clustering import ClusteringPolicy
from repro.engine.heap import HeapFile, Rid, rid_page
from repro.engine.locks import LockManager, LockMode
from repro.engine.pages import PageFile
from repro.engine.txn import DELETED, Transaction, TxnStatus
from repro.engine.versioning import VersionChain, preserve_version
from repro.engine.vfs import VFS, CountingVFS, RealVFS
from repro.engine.wal import WriteAheadLog
from repro.obs import Instrumentation, resolve
from repro.errors import (
    DatabaseClosedError,
    RecordNotFoundError,
    SchemaError,
    StorageError,
    TransactionError,
)


@dataclasses.dataclass(frozen=True)
class VacuumStats:
    """Before/after file sizes of one vacuum run."""

    size_before: int
    size_after: int

    @property
    def reclaimed(self) -> int:
        """Bytes the compaction gave back."""
        return max(0, self.size_before - self.size_after)


@dataclasses.dataclass
class StoreStats:
    """Counters surfaced to the harness and the ablation benchmarks."""

    commits: int = 0
    aborts: int = 0
    objects_written: int = 0
    objects_read: int = 0
    checkpoints: int = 0
    recovered_transactions: int = 0


def _clone_value(value: Any) -> Any:
    """Deep-copy the mutable containers of a decoded value.

    Scalars (str/int/float/bytes/bool/None) are immutable and shared;
    dicts and lists are copied recursively so a cached record can hand
    out private states without re-decoding.
    """
    if isinstance(value, dict):
        return {key: _clone_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_clone_value(item) for item in value]
    return value


class DecodeCache:
    """Decoded-record cache keyed by heap RID, tagged with frame LSNs.

    A record that has not changed since it was last decoded never needs
    decoding again — the dominant cost of a warm object read.  Each
    entry is keyed by the record's RID (``(pid, slot)`` packed into one
    int) and tagged with the heap page's buffer-frame LSN at decode
    time, giving the ``(pid, slot, lsn)`` identity the coherence rules
    are stated over:

    * every committed write to a RID (insert into a reused slot,
      update, delete) **invalidates** that RID's entry;
    * WAL recovery, vacuum, ``drop_cache``/``close`` (the section
      5.3(e) cold step) and structural schema changes **clear** the
      cache wholesale;
    * when the record's page is resident, a hit additionally requires
      the frame LSN to match the entry's tag — a belt-and-braces guard
      against any write path that forgot to invalidate.  A
      *non-resident* page cannot have changed (every write goes through
      the pool and the explicit invalidations above), so entries keep
      serving after their page is evicted — the decode cache acts as an
      object cache extending past the buffer pool's capacity.

    Entries returned by :meth:`get` are the cache's own objects: the
    caller must clone before mutating (see :func:`_clone_value`).
    Eviction is FIFO at ``capacity``.

    Counters: ``engine.decode_cache.hits`` / ``.misses`` /
    ``.invalidations`` / ``.clears``.
    """

    __slots__ = ("capacity", "_entries", "_instr")

    def __init__(self, capacity: int, instrumentation) -> None:
        self.capacity = capacity
        self._entries: Dict[Rid, Tuple[Optional[int], Dict[str, Any]]] = {}
        self._instr = instrumentation

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, rid: Rid, page_lsn: Optional[int]
    ) -> Optional[Dict[str, Any]]:
        """The cached record for ``rid``, or None.

        ``page_lsn`` is the RID's page frame LSN if resident (None
        otherwise); a resident page whose LSN moved past the entry's
        tag invalidates the entry.
        """
        entry = self._entries.get(rid)
        if entry is None:
            self._instr.count("engine.decode_cache.misses")
            return None
        lsn, record = entry
        if lsn is not None and page_lsn is not None and lsn != page_lsn:
            del self._entries[rid]
            self._instr.count("engine.decode_cache.invalidations")
            self._instr.count("engine.decode_cache.misses")
            return None
        self._instr.count("engine.decode_cache.hits")
        return record

    def put(
        self, rid: Rid, page_lsn: Optional[int], record: Dict[str, Any]
    ) -> None:
        """Cache ``record`` (which the cache now owns) under ``rid``."""
        entries = self._entries
        if rid not in entries and len(entries) >= self.capacity:
            entries.pop(next(iter(entries)))  # FIFO
        entries[rid] = (page_lsn, record)

    def invalidate(self, rid: Rid) -> None:
        """Drop the entry for ``rid`` (a committed write touched it)."""
        if self._entries.pop(rid, None) is not None:
            self._instr.count("engine.decode_cache.invalidations")

    def clear(self) -> None:
        """Forget everything (cold reset, recovery, vacuum, schema)."""
        if self._entries:
            self._instr.count("engine.decode_cache.clears")
        self._entries.clear()


class ObjectStore:
    """A single-file object database.

    Args:
        path: the database file (a ``.wal`` sibling is created).
        cache_pages: buffer pool capacity in pages.
        clustered: honour clustering hints (the 1-N policy).
        versioned: preserve pre-states of updated objects (R5).
        locking: acquire S/X object locks per transaction (R8); off by
            default because the benchmark proper is single-user.
        sync_commits: fsync the WAL at commit.  Tests may disable it.
        checkpoint_after_bytes: WAL size that triggers an automatic
            checkpoint at the next commit boundary.
        vfs: the file-system seam every byte of I/O crosses (see
            :mod:`repro.engine.vfs`).  Defaults to the real filesystem;
            tests inject a :class:`~repro.engine.vfs.FaultInjectingVFS`
            to crash the store at chosen I/O operations.  Whatever is
            passed is wrapped in a :class:`~repro.engine.vfs.CountingVFS`
            feeding ``engine.io.*`` counters.
        group_commit: batch consecutive commits into one WAL fsync (and
            one page-force).  Bounded durability relaxation — at most
            ``group_commit_size - 1`` trailing commits can be lost to a
            power failure, each atomically; crash *consistency* is
            unaffected.  See ``docs/durability.md``.
        group_commit_size: commits per durability point when
            ``group_commit`` is on.
        decode_cache_size: capacity (records) of the :class:`DecodeCache`
            serving unchanged records without re-decoding; ``0``
            disables it.
    """

    _META_ROOT = "meta.rid"
    _DIR_ROOT = "dir.root"
    _EXTENT_ROOT = "extent.root"

    def __init__(
        self,
        path: str,
        cache_pages: int = 256,
        clustered: bool = True,
        versioned: bool = False,
        locking: bool = False,
        sync_commits: bool = True,
        checkpoint_after_bytes: int = 8 * 1024 * 1024,
        instrumentation: Optional[Instrumentation] = None,
        vfs: Optional[VFS] = None,
        group_commit: bool = False,
        group_commit_size: int = 8,
        decode_cache_size: int = 8192,
    ) -> None:
        self.path = path
        self.cache_pages = cache_pages
        self.decode_cache_size = decode_cache_size
        self.clustering = ClusteringPolicy(enabled=clustered)
        self.versioned = versioned
        self.locking = locking
        self.sync_commits = sync_commits
        self.checkpoint_after_bytes = checkpoint_after_bytes
        self.group_commit = group_commit
        self.group_commit_size = group_commit_size
        #: Shared by the buffer pool, the WAL and every B+tree below.
        self.instrumentation = resolve(instrumentation)
        #: The raw injected VFS (shared with vacuum's target store).
        self._base_vfs: VFS = vfs or RealVFS()
        #: The counting wrapper every engine component below receives.
        self.vfs: VFS = CountingVFS(self._base_vfs, self.instrumentation)

        self.stats = StoreStats()
        self.locks = LockManager()
        self._mutex = threading.RLock()
        self._next_txid = 1
        self._current: Optional[Transaction] = None

        self._file: Optional[PageFile] = None
        self._pool: Optional[BufferPool] = None
        self._wal: Optional[WriteAheadLog] = None
        self._heap: Optional[HeapFile] = None
        self._catalog: Optional[Catalog] = None
        self._directory: Optional[BTree] = None
        self._extent: Optional[BTree] = None
        self._indexes: Dict[Tuple[str, str], BTree] = {}
        self._meta: Dict[str, Any] = {}
        self._meta_rid: Optional[Rid] = None
        self._decode_cache: Optional[DecodeCache] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self) -> None:
        """Open (creating if absent), running crash recovery if needed.

        On *any* failure — a corrupt WAL raising
        :class:`~repro.errors.RecoveryError`, a bad header page — every
        handle opened so far is closed and the store is reset to its
        closed state before the exception propagates, so a failed open
        neither leaks file descriptors nor leaves a half-open store.
        """
        with self._mutex:
            if self.is_open:
                return
            try:
                self._wal = WriteAheadLog(
                    self.path + ".wal",
                    sync_on_commit=self.sync_commits,
                    instrumentation=self.instrumentation,
                    vfs=self.vfs,
                    group_commit=self.group_commit,
                    group_commit_size=self.group_commit_size,
                )
                self._recover_if_needed()
                self._file = PageFile(self.path, vfs=self.vfs)
                self._pool = BufferPool(
                    self._file, self.cache_pages,
                    instrumentation=self.instrumentation,
                )
                self._heap = HeapFile(self._pool, "data")
                self._catalog = Catalog(self._heap)
                self._directory = BTree(
                    self._pool, self._file.get_root(self._DIR_ROOT, 0)
                )
                self._extent = BTree(
                    self._pool, self._file.get_root(self._EXTENT_ROOT, 0)
                )
                self._load_meta()
                self._load_indexes()
                # Always fresh at open: recovery (which just ran if
                # needed) must never be able to serve a pre-crash
                # decode under a stale (pid, slot, lsn) identity.
                self._decode_cache = (
                    DecodeCache(self.decode_cache_size, self.instrumentation)
                    if self.decode_cache_size > 0
                    else None
                )
            except BaseException:
                self._dispose_handles()
                raise

    def _dispose_handles(self) -> None:
        """Close any open file handles and reset to the closed state.

        Used when :meth:`open` fails part-way: without it a corrupt WAL
        would leave ``self._wal`` holding an open descriptor that
        :meth:`close` (a no-op on a closed store) never released.
        """
        for handle in (self._wal, self._file):
            if handle is not None:
                try:
                    handle.close()
                except Exception:
                    pass  # disposal must not mask the original error
        self._file = None
        self._pool = None
        self._wal = None
        self._heap = None
        self._catalog = None
        self._directory = None
        self._extent = None
        self._indexes = {}
        self._decode_cache = None

    def _recover_if_needed(self) -> None:
        """Physical redo of committed work left in the WAL.

        Prepared-but-undecided transactions (a two-phase-commit
        participant's PREPARE with no decision record) are **not**
        replayed — presumed abort — and are counted under
        ``engine.recovery.in_doubt_aborted`` so a coordinator-aware
        driver can notice and resolve them out of band.
        """
        work, in_doubt = self._wal.recover()
        if in_doubt:
            self.instrumentation.count(
                "engine.recovery.in_doubt_aborted", len(in_doubt)
            )
        if not work:
            return
        self.instrumentation.count("engine.store.recoveries")
        file = PageFile(self.path, vfs=self.vfs)
        try:
            for _txid, records in work:
                for record in records:
                    if record.kind == wal_mod.PAGE:
                        file.write_page_extending(
                            record.oid, wal_mod.page_image(record)
                        )
                    elif record.kind == wal_mod.ROOTS:
                        file.restore_roots(
                            {k: v for k, v in record.state.items()}
                        )
                self.stats.recovered_transactions += 1
            file.sync()
        finally:
            file.close()
        self._wal.log_checkpoint()
        self.stats.checkpoints += 1

    def close(self) -> None:
        """Checkpoint and close.  An open transaction is **aborted**.

        Contract note: ``close()`` *silently discards* uncommitted
        writes — closing is a deliberate end-of-session action and the
        deferred-update design makes the discard safe (nothing
        uncommitted ever reached a data page).  This is intentionally
        the opposite of :meth:`drop_cache`, which *raises*
        :class:`~repro.errors.TransactionError` on uncommitted writes
        because dropping the cache mid-transaction is almost always a
        harness sequencing bug.  Both behaviours are pinned by tests.
        """
        with self._mutex:
            if not self.is_open:
                return
            if self._current is not None:
                self._abort_txn(self._current)
            self.checkpoint()
            self._dispose_handles()

    @property
    def is_open(self) -> bool:
        """Whether the store is open."""
        return self._file is not None

    def __enter__(self) -> "ObjectStore":
        """Open (if needed) and return the store: ``with ObjectStore(p) as s:``."""
        if not self.is_open:
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Commit on success, abort on exception, then close."""
        try:
            if self.is_open:
                if exc_type is not None:
                    self.abort()
                else:
                    self.commit()
        finally:
            if self.is_open:
                self.close()
        return False

    def _require_open(self) -> None:
        if not self.is_open:
            raise DatabaseClosedError(f"store {self.path} is not open")

    def checkpoint(self) -> None:
        """Force all pages, fsync the data file, truncate the WAL."""
        self._require_open()
        with self.instrumentation.span("store.checkpoint"):
            if self._wal.pending_commits:
                self._wal.sync(force=True)  # write-ahead: log before pages
            self._save_roots()
            self._pool.flush_all()
            self._file.sync()
            self._wal.log_checkpoint()
            self.stats.checkpoints += 1
            self.instrumentation.count("engine.store.checkpoints")

    def drop_cache(self) -> None:
        """Flush and empty the buffer pool: the next access is cold.

        This is the hook behind the protocol's section 5.3(e) close
        step; it also resets the pool's hit/miss statistics.

        Contract note: unlike :meth:`close` (which silently aborts an
        open transaction), ``drop_cache`` **raises**
        :class:`~repro.errors.TransactionError` when the current
        transaction has uncommitted writes.  A cache drop is a
        measurement-protocol step, not a session end: reaching it with
        buffered writes means the harness forgot a commit, and eating
        the writes would silently corrupt the measurement.

        Raises:
            TransactionError: if the active transaction has buffered
                writes.
        """
        self._require_open()
        if self._current is not None and self._current.write_set:
            raise TransactionError("cannot drop cache with uncommitted writes")
        if self._wal.pending_commits:
            self._wal.sync(force=True)  # write-ahead: log before pages
        self._save_roots()
        self._pool.drop_cache()
        self._pool.stats.reset()
        if self._decode_cache is not None:
            self._decode_cache.clear()

    @property
    def buffer_stats(self):
        """The buffer pool's hit/miss/eviction counters."""
        self._require_open()
        return self._pool.stats

    @property
    def catalog(self) -> Catalog:
        """The schema catalog."""
        self._require_open()
        return self._catalog

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    def _load_meta(self) -> None:
        rid = self._file.get_root(self._META_ROOT, 0)
        if rid:
            self._meta_rid = rid
            self._meta = serializer.decode(self._heap.read(rid))
        else:
            self._meta = {"next_oid": 1, "commit_ts": 0, "indexes": []}
            self._meta_rid = None
            self._save_meta()

    def _save_meta(self) -> None:
        payload = serializer.encode(self._meta)
        if self._meta_rid is None:
            self._meta_rid = self._heap.insert(payload)
        else:
            self._meta_rid = self._heap.update(self._meta_rid, payload)
        self._file.set_root(self._META_ROOT, self._meta_rid)

    def _load_indexes(self) -> None:
        for class_name, field in self._meta["indexes"]:
            root_name = self._index_root_name(class_name, field)
            self._indexes[(class_name, field)] = BTree(
                self._pool, self._file.get_root(root_name, 0)
            )

    def _index_root_name(self, class_name: str, field: str) -> str:
        class_id = self._catalog.get(class_name).class_id
        name = f"ix.{class_id}.{field}"
        if len(name) > 16:
            name = name[:16]
        return name

    def _save_roots(self) -> None:
        self._file.set_root(self._DIR_ROOT, self._directory.root)
        self._file.set_root(self._EXTENT_ROOT, self._extent.root)
        for (class_name, field), tree in self._indexes.items():
            self._file.set_root(self._index_root_name(class_name, field), tree.root)

    @property
    def commit_timestamp(self) -> int:
        """The logical clock value of the last commit."""
        self._require_open()
        return self._meta["commit_ts"]

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        fields: List[FieldDefinition],
        base: Optional[str] = None,
    ) -> ClassDefinition:
        """Register a class in the catalog (persisted immediately)."""
        self._require_open()
        definition = self._catalog.define_class(name, fields, base)
        self._flush_structural_change()
        return definition

    def add_field(self, class_name: str, field: FieldDefinition) -> None:
        """Dynamically add a field to a class (R4; lazy upgrade)."""
        self._require_open()
        self._catalog.add_field(class_name, field)
        self._flush_structural_change()

    def _flush_structural_change(self) -> None:
        """Persist catalog/index structure changes durably right away."""
        txid = self._next_txid
        self._next_txid += 1
        self._save_roots()
        self._log_and_force(txid)
        if self._decode_cache is not None:
            # Cached records embed schema-upgraded states; a catalog
            # change (new class version, new fields) makes them stale.
            self._decode_cache.clear()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start an explicit transaction.

        Only one transaction can be current per store handle; the
        multi-user layers each hold their own workspace and merge
        through explicit check-in instead.
        """
        with self._mutex:
            self._require_open()
            if self._current is not None:
                raise TransactionError("a transaction is already active")
            txn = Transaction(self._next_txid)
            self._next_txid += 1
            txn._store = self
            self._current = txn
            return txn

    def current_transaction(self) -> Optional[Transaction]:
        """The active transaction, if any."""
        return self._current

    def _ensure_txn(self, txn: Optional[Transaction]) -> Transaction:
        if txn is not None:
            txn.require_active()
            return txn
        if self._current is None:
            self.begin()
        return self._current

    def commit(self) -> None:
        """Commit the current transaction (no-op when none is active)."""
        with self._mutex:
            self._require_open()
            if self._current is not None:
                self._commit_txn(self._current)

    def abort(self) -> None:
        """Abort the current transaction (no-op when none is active)."""
        with self._mutex:
            if self._current is not None:
                self._abort_txn(self._current)

    def _lock(self, txn: Transaction, oid: int, mode: LockMode) -> None:
        if self.locking:
            self.locks.acquire(txn.txid, oid, mode)

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------

    def new(
        self,
        class_name: str,
        state: Dict[str, Any],
        near: Optional[int] = None,
        txn: Optional[Transaction] = None,
    ) -> int:
        """Create an object; returns its OID.

        Unknown fields raise :class:`~repro.errors.SchemaError`; fields
        missing from ``state`` take their catalog defaults.  ``near``
        is a clustering hint (place on the same page as that object).
        """
        with self._mutex:
            self._require_open()
            txn = self._ensure_txn(txn)
            definition = self._catalog.get(class_name)
            valid = set(self._catalog.all_field_names(class_name))
            unknown = set(state) - valid
            if unknown:
                raise SchemaError(
                    f"unknown fields for {class_name}: {sorted(unknown)}"
                )
            full_state = {
                f.name: state.get(f.name, f.default)
                for f in self._catalog.all_fields(class_name)
            }
            oid = self._meta["next_oid"]
            self._meta["next_oid"] += 1
            self._lock(txn, oid, LockMode.EXCLUSIVE)
            txn.buffer_put(oid, full_state, created=True)
            txn.new_classes[oid] = definition.name
            hint = self.clustering.hint_for_new(near)
            if hint is not None:
                txn.place_near[oid] = hint
            return oid

    def get(self, oid: int, txn: Optional[Transaction] = None) -> Dict[str, Any]:
        """Read an object's state (a private copy).

        Raises:
            RecordNotFoundError: if the OID does not exist (or was
                deleted in the current transaction).
        """
        with self._mutex:
            self._require_open()
            active = txn or self._current
            if active is not None:
                buffered = active.buffered(oid)
                if buffered is DELETED:
                    raise RecordNotFoundError(oid)
                if buffered is not None:
                    active.note_read(oid)
                    return dict(buffered)
                self._lock(active, oid, LockMode.SHARED)
                active.note_read(oid)
            record = self._read_record(oid)
            self.stats.objects_read += 1
            self.instrumentation.count("engine.store.objects_read")
            return record["s"]

    def get_many(
        self, oids: List[int], txn: Optional[Transaction] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Read a batch of objects' states, clustered-fetch style.

        Semantically equivalent to ``{oid: store.get(oid)}`` over the
        distinct oids (transaction-buffered copies win, shared locks
        and read notes are taken per oid, deleted oids raise), but the
        committed residue is fetched in *physical* order: rids are
        resolved first, the oids sorted by heap page, and the page set
        prefetched through the buffer pool in one pass — so a frontier
        of clustered objects costs sequential page reads instead of one
        random fault per object.

        Returns a dict keyed by oid (duplicates collapse).

        Raises:
            RecordNotFoundError: for any missing or deleted oid.
        """
        with self._mutex:
            self._require_open()
            active = txn or self._current
            out: Dict[int, Dict[str, Any]] = {}
            committed: List[int] = []
            for oid in dict.fromkeys(oids):
                if active is not None:
                    buffered = active.buffered(oid)
                    if buffered is DELETED:
                        raise RecordNotFoundError(oid)
                    if buffered is not None:
                        active.note_read(oid)
                        out[oid] = dict(buffered)
                        continue
                    self._lock(active, oid, LockMode.SHARED)
                    active.note_read(oid)
                committed.append(oid)
            if not committed:
                return out
            rids = {oid: self._rid_of(oid) for oid in committed}
            committed.sort(key=lambda oid: rids[oid])
            self.instrumentation.count("engine.store.batch_reads")
            self.instrumentation.count(
                "engine.store.batch_objects", len(committed)
            )
            cache = self._decode_cache
            to_fetch = committed
            if cache is not None:
                # Serve decode-cache hits first; only the misses cost
                # page prefetch + pin + decode below.
                to_fetch = []
                frame_lsn = self._pool.frame_lsn
                for oid in committed:
                    rid = rids[oid]
                    record = cache.get(rid, frame_lsn(rid_page(rid)))
                    if record is None:
                        to_fetch.append(oid)
                    else:
                        out[oid] = _clone_value(record["s"])
            if to_fetch:
                pages = list(
                    dict.fromkeys(rid_page(rids[oid]) for oid in to_fetch)
                )
                self._pool.prefetch(pages)
                raws = self._heap.read_many([rids[oid] for oid in to_fetch])
                for oid in to_fetch:
                    rid = rids[oid]
                    record = serializer.decode(raws[rid])
                    record["s"] = self._catalog.upgrade_state(
                        record["c"], record["v"], record["s"]
                    )
                    if cache is not None:
                        cache.put(
                            rid, self._pool.frame_lsn(rid_page(rid)), record
                        )
                        out[oid] = _clone_value(record["s"])
                    else:
                        out[oid] = record["s"]
            self.stats.objects_read += len(committed)
            self.instrumentation.count(
                "engine.store.objects_read", len(committed)
            )
            return out

    def class_of(self, oid: int, txn: Optional[Transaction] = None) -> str:
        """The class name of an object."""
        with self._mutex:
            self._require_open()
            active = txn or self._current
            if active is not None and oid in active.new_classes:
                return active.new_classes[oid]
            record = self._read_record(oid)
            return self._catalog.get_by_id(record["c"]).name

    def exists(self, oid: int, txn: Optional[Transaction] = None) -> bool:
        """Whether an OID resolves to a live object."""
        with self._mutex:
            self._require_open()
            active = txn or self._current
            if active is not None:
                buffered = active.buffered(oid)
                if buffered is DELETED:
                    return False
                if buffered is not None:
                    return True
            return self._directory.search_unique(oid) is not None

    def put(
        self,
        oid: int,
        state: Dict[str, Any],
        txn: Optional[Transaction] = None,
    ) -> None:
        """Replace an object's whole state."""
        with self._mutex:
            self._require_open()
            txn = self._ensure_txn(txn)
            if txn.buffered(oid) is None and not self.exists(oid, txn):
                raise RecordNotFoundError(oid)
            self._lock(txn, oid, LockMode.EXCLUSIVE)
            txn.buffer_put(oid, dict(state))

    def update(
        self,
        oid: int,
        changes: Dict[str, Any],
        txn: Optional[Transaction] = None,
    ) -> None:
        """Apply a partial update to an object."""
        with self._mutex:
            self._require_open()
            txn = self._ensure_txn(txn)
            state = self.get(oid, txn)
            state.update(changes)
            self._lock(txn, oid, LockMode.EXCLUSIVE)
            txn.buffer_put(oid, state)

    def delete(self, oid: int, txn: Optional[Transaction] = None) -> None:
        """Delete an object."""
        with self._mutex:
            self._require_open()
            txn = self._ensure_txn(txn)
            if txn.buffered(oid) is None and not self.exists(oid, txn):
                raise RecordNotFoundError(oid)
            self._lock(txn, oid, LockMode.EXCLUSIVE)
            txn.buffer_delete(oid)

    def relocate_near(
        self, oid: int, near: int, txn: Optional[Transaction] = None
    ) -> None:
        """Re-cluster an existing object next to another (1-N policy)."""
        with self._mutex:
            self._require_open()
            if not self.clustering.should_relocate(near):
                return
            txn = self._ensure_txn(txn)
            state = self.get(oid, txn)
            txn.buffer_put(oid, state)
            txn.place_near[oid] = near

    # ------------------------------------------------------------------
    # Record I/O
    # ------------------------------------------------------------------

    def _rid_of(self, oid: int) -> Rid:
        rid = self._directory.search_unique(oid)
        if rid is None:
            raise RecordNotFoundError(oid)
        return rid

    def _decode_at(self, rid: Rid) -> Dict[str, Any]:
        """Decode (and schema-upgrade) the committed record at ``rid``."""
        record = serializer.decode(self._heap.read(rid))
        record["s"] = self._catalog.upgrade_state(
            record["c"], record["v"], record["s"]
        )
        return record

    def _cached_record(self, rid: Rid) -> Dict[str, Any]:
        """The record at ``rid``, via the decode cache when enabled.

        With the cache on, the returned record is (or becomes) a shared
        cache entry — callers must clone anything they hand out for
        mutation (see :func:`_clone_value`).
        """
        cache = self._decode_cache
        if cache is None:
            return self._decode_at(rid)
        pid = rid_page(rid)
        record = cache.get(rid, self._pool.frame_lsn(pid))
        if record is None:
            record = self._decode_at(rid)
            # heap.read left the page resident, so this LSN tags the
            # exact byte state we just decoded.
            cache.put(rid, self._pool.frame_lsn(pid), record)
        return record

    def _read_record(self, oid: int) -> Dict[str, Any]:
        record = self._cached_record(self._rid_of(oid))
        if self._decode_cache is not None:
            record = dict(record)
            record["s"] = _clone_value(record["s"])
        return record

    def _encode_record(
        self,
        class_id: int,
        version: int,
        state: Dict[str, Any],
        version_head: Rid,
        timestamp: int,
    ) -> bytes:
        return serializer.encode(
            {"c": class_id, "v": version, "s": state, "p": version_head, "ts": timestamp}
        )

    # ------------------------------------------------------------------
    # Commit machinery
    # ------------------------------------------------------------------

    def _commit_txn(self, txn: Transaction) -> None:
        with self._mutex:
            self._require_open()
            txn.require_active()
            if txn is not self._current:
                raise TransactionError("not the current transaction")
            try:
                if txn.write_set:
                    with self.instrumentation.span("store.commit"):
                        self._apply_and_force(txn)
                txn.status = TxnStatus.COMMITTED
            finally:
                self.locks.release_all(txn.txid)
                self._current = None
            self.stats.commits += 1
            self.instrumentation.count("engine.store.commits")

    def _apply_and_force(self, txn: Transaction) -> None:
        self._meta["commit_ts"] += 1
        timestamp = self._meta["commit_ts"]
        for oid, buffered in txn.write_set.items():
            if buffered is DELETED:
                if oid in txn.new_classes:
                    # Created and deleted inside this very transaction:
                    # it never reached the directory, so there is
                    # nothing to remove (dropping it *is* the delete).
                    continue
                self._apply_delete(oid)
            elif oid in txn.created:
                self._apply_insert(
                    oid, txn.new_classes[oid], buffered,
                    txn.place_near.get(oid), timestamp,
                )
            else:
                self._apply_update(
                    oid, buffered, txn.place_near.get(oid), timestamp
                )
            self.stats.objects_written += 1
            self.instrumentation.count("engine.store.objects_written")
        self._save_meta()
        self._save_roots()
        self._log_and_force(txn.txid)

    def _log_and_force(self, txid: int) -> None:
        """WAL the dirty page images + roots, fsync, then force pages.

        With group commit, the WAL defers the fsync until a batch of
        commits has accumulated; page-forcing is deferred in lockstep —
        dirty pages stay in the pool (re-logged by the next commit, so
        replay still sees every committed image) and are flushed only
        when the batch reaches its durability point.  This preserves
        the write-ahead rule: no page image reaches the data file
        before the log records that can recreate it are durable.
        """
        records = [
            wal_mod.page_record(txid, pid, image)
            for pid, image in self._pool.dirty_pages().items()
        ]
        records.append(
            wal_mod.roots_record(txid, self._file.roots_snapshot())
        )
        synced = self._wal.log_commit(txid, records)
        if not synced:
            return  # group commit: pages force at the batch boundary
        self._pool.flush_all()
        if self._wal_size() > self.checkpoint_after_bytes:
            self._file.sync()
            self._wal.log_checkpoint()
            self.stats.checkpoints += 1

    def _wal_size(self) -> int:
        return self.vfs.size(self._wal.path)

    def _apply_insert(
        self,
        oid: int,
        class_name: str,
        state: Dict[str, Any],
        near_oid: Optional[int],
        timestamp: int,
    ) -> None:
        definition = self._catalog.get(class_name)
        near_rid = None
        if near_oid is not None:
            near_rid = self._directory.search_unique(near_oid)
        record = self._encode_record(
            definition.class_id, definition.version, state, 0, timestamp
        )
        rid = self._heap.insert(record, near=near_rid)
        if self._decode_cache is not None:
            # The insert may reuse a tombstoned slot whose previous
            # occupant was decoded under the same RID.
            self._decode_cache.invalidate(rid)
        self._directory.insert(oid, rid, disc=0)
        self._extent.insert(definition.class_id, oid, disc=oid)
        self._index_add(class_name, oid, state)

    def _apply_update(
        self,
        oid: int,
        state: Dict[str, Any],
        near_oid: Optional[int],
        timestamp: int,
    ) -> None:
        rid = self._rid_of(oid)
        old = serializer.decode(self._heap.read(rid))
        class_name = self._catalog.get_by_id(old["c"]).name
        old_state = self._catalog.upgrade_state(old["c"], old["v"], old["s"])
        version_head = old.get("p", 0)
        if self.versioned:
            version_head = preserve_version(
                self._heap, oid, old.get("ts", 0), old_state, version_head
            )
        definition = self._catalog.get(class_name)
        record = self._encode_record(
            definition.class_id, definition.version, state, version_head, timestamp
        )
        if near_oid is not None:
            near_rid = self._directory.search_unique(near_oid)
            self._heap.delete(rid)
            new_rid = self._heap.insert(record, near=near_rid)
        else:
            new_rid = self._heap.update(rid, record)
        if self._decode_cache is not None:
            self._decode_cache.invalidate(rid)
            if new_rid != rid:
                self._decode_cache.invalidate(new_rid)
        if new_rid != rid:
            self._directory.update_value(oid, 0, new_rid)
        self._index_replace(class_name, oid, old_state, state)

    def _apply_delete(self, oid: int) -> None:
        rid = self._rid_of(oid)
        old = serializer.decode(self._heap.read(rid))
        class_name = self._catalog.get_by_id(old["c"]).name
        old_state = self._catalog.upgrade_state(old["c"], old["v"], old["s"])
        self._heap.delete(rid)
        if self._decode_cache is not None:
            self._decode_cache.invalidate(rid)
        self._directory.delete(oid, rid, disc=0)
        self._extent.delete(old["c"], oid, disc=oid)
        self._index_remove(class_name, oid, old_state)

    def _abort_txn(self, txn: Transaction) -> None:
        with self._mutex:
            txn.write_set.clear()
            txn.place_near.clear()
            txn.status = TxnStatus.ABORTED
            self.locks.release_all(txn.txid)
            if txn is self._current:
                self._current = None
            self.stats.aborts += 1
            self.instrumentation.count("engine.store.aborts")

    # ------------------------------------------------------------------
    # Extents
    # ------------------------------------------------------------------

    def scan_class(
        self,
        class_name: str,
        include_subclasses: bool = True,
        txn: Optional[Transaction] = None,
    ) -> Iterator[int]:
        """Iterate the OIDs of a class extent.

        Committed objects come from the extent B+tree; objects created
        (and not yet committed) by the active transaction are appended,
        and objects it deleted are skipped, so a transaction sees its
        own work.
        """
        self._require_open()
        active = txn or self._current
        names = [class_name]
        if include_subclasses:
            names += [
                other
                for other in self._catalog.class_names()
                if other != class_name
                and self._catalog.is_subclass(other, class_name)
            ]
        for name in names:
            class_id = self._catalog.get(name).class_id
            for _key, oid in self._extent.scan_range(class_id, class_id):
                if active is not None and active.buffered(oid) is DELETED:
                    continue
                yield oid
        if active is not None:
            for oid, created_class in list(active.new_classes.items()):
                if active.buffered(oid) is DELETED:
                    continue
                if created_class in names:
                    yield oid

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, class_name: str, field: str) -> None:
        """Create (and back-fill) an integer index on ``class.field``.

        The index covers the class and its subclasses.
        """
        with self._mutex:
            self._require_open()
            if (class_name, field) in self._indexes:
                raise SchemaError(
                    f"index on {class_name}.{field} already exists"
                )
            if field not in self._catalog.all_field_names(class_name):
                raise SchemaError(f"{class_name} has no field {field!r}")
            tree = BTree(self._pool, 0)
            self._indexes[(class_name, field)] = tree
            self._meta["indexes"].append([class_name, field])
            # Back-fill with a sorted bottom-up bulk load: O(n) instead
            # of n top-down inserts over the existing extent.
            rows = []
            for oid in list(self.scan_class(class_name)):
                value = self._read_record(oid)["s"].get(field)
                if value is not None:
                    self._index_check_int(class_name, field, value)
                    rows.append((value, oid, oid))
            rows.sort()
            tree.bulk_load(rows)
            self._save_meta()
            self._save_roots()
            self._log_and_force(self._next_txid)
            self._next_txid += 1

    @staticmethod
    def _index_check_int(class_name: str, field: str, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(
                f"index on {class_name}.{field} requires int values, "
                f"got {type(value).__name__}"
            )

    def _indexes_covering(self, class_name: str) -> List[Tuple[str, str, BTree]]:
        found = []
        for (indexed_class, field), tree in self._indexes.items():
            if self._catalog.is_subclass(class_name, indexed_class):
                found.append((indexed_class, field, tree))
        return found

    def _index_add(self, class_name: str, oid: int, state: Dict[str, Any]) -> None:
        for _indexed_class, field, tree in self._indexes_covering(class_name):
            value = state.get(field)
            if value is not None:
                self._index_check_int(class_name, field, value)
                tree.insert(value, oid, disc=oid)

    def _index_remove(self, class_name: str, oid: int, state: Dict[str, Any]) -> None:
        for _indexed_class, field, tree in self._indexes_covering(class_name):
            value = state.get(field)
            if value is not None:
                tree.delete(value, oid, disc=oid)

    def _index_replace(
        self,
        class_name: str,
        oid: int,
        old_state: Dict[str, Any],
        new_state: Dict[str, Any],
    ) -> None:
        for _indexed_class, field, tree in self._indexes_covering(class_name):
            old_value = old_state.get(field)
            new_value = new_state.get(field)
            if old_value == new_value:
                continue
            if old_value is not None:
                tree.delete(old_value, oid, disc=oid)
            if new_value is not None:
                self._index_check_int(class_name, field, new_value)
                tree.insert(new_value, oid, disc=oid)

    def index_lookup(self, class_name: str, field: str, value: int) -> List[int]:
        """OIDs with ``field == value`` via the index."""
        return self.index_range(class_name, field, value, value)

    def index_range(
        self, class_name: str, field: str, low: int, high: int
    ) -> List[int]:
        """OIDs with ``low <= field <= high`` via the index.

        Raises:
            SchemaError: if no index exists on the class/field pair.
        """
        self._require_open()
        tree = self._indexes.get((class_name, field))
        if tree is None:
            raise SchemaError(f"no index on {class_name}.{field}")
        return [oid for _key, oid in tree.scan_range(low, high)]

    def has_index(self, class_name: str, field: str) -> bool:
        """Whether an index exists on exactly this class/field pair."""
        return (class_name, field) in self._indexes

    # ------------------------------------------------------------------
    # Versions (R5)
    # ------------------------------------------------------------------

    def version_chain(self, oid: int) -> VersionChain:
        """The preserved history of an object, newest first."""
        self._require_open()
        record = self._read_record(oid)
        return VersionChain(self._heap, record.get("p", 0))

    def previous_version(self, oid: int) -> Optional[Dict[str, Any]]:
        """The state the object had before its latest committed update."""
        newest = self.version_chain(oid).newest()
        return dict(newest.state) if newest else None

    def version_at(self, oid: int, timestamp: int) -> Optional[Dict[str, Any]]:
        """The object's state as of a past commit timestamp.

        Returns the live state if the object has not changed since
        ``timestamp``, a preserved version otherwise, or None if the
        object did not exist yet.
        """
        self._require_open()
        record = self._read_record(oid)
        if record.get("ts", 0) <= timestamp:
            return record["s"]
        version = VersionChain(self._heap, record.get("p", 0)).at(timestamp)
        return dict(version.state) if version else None

    # ------------------------------------------------------------------
    # Vacuum: copy-compaction (reclaims tombstones and empty pages)
    # ------------------------------------------------------------------

    def vacuum(self) -> "VacuumStats":
        """Rewrite the database into its compact form.

        Deletes leave tombstoned slots and lazily-emptied B+tree leaves
        behind; vacuum rebuilds the file by copying every live object
        (in extent order, preserving OIDs, class versions, timestamps
        and version chains) into a fresh store, then atomically swaps
        the files.  Indexes are re-created and back-filled.

        Requires no active transaction.  Returns before/after sizes.
        """
        with self._mutex:
            self._require_open()
            if self._current is not None and self._current.write_set:
                raise TransactionError("cannot vacuum with uncommitted writes")
            self.checkpoint()
            size_before = self.vfs.size(self.path)

            compact_path = self.path + ".vacuum"
            for stale in (compact_path, compact_path + ".wal"):
                if self.vfs.exists(stale):
                    self.vfs.remove(stale)
            target = ObjectStore(
                compact_path,
                cache_pages=self.cache_pages,
                clustered=self.clustering.enabled,
                versioned=self.versioned,
                sync_commits=False,
                instrumentation=self.instrumentation,
                vfs=self._base_vfs,
            )
            target.open()
            self._copy_contents_into(target)
            target.close()

            self.close()
            self.vfs.replace(compact_path, self.path)
            wal_path = self.path + ".wal"
            if self.vfs.exists(wal_path):
                self.vfs.remove(wal_path)
            vacuum_wal = compact_path + ".wal"
            if self.vfs.exists(vacuum_wal):
                self.vfs.remove(vacuum_wal)
            self.open()
            size_after = self.vfs.size(self.path)
            return VacuumStats(size_before, size_after)

    def _copy_contents_into(self, target: "ObjectStore") -> None:
        """Copy catalog, objects (with history) and indexes to ``target``."""
        # Catalog: classes in definition order preserves class ids.
        for name in self._catalog.class_names():
            definition = self._catalog.get(name)
            copied = target._catalog.define_class(
                name, [FieldDefinition(f.name, f.default, f.since_version)
                       for f in definition.fields],
                base=definition.base,
            )
            copied.version = definition.version
        target._catalog.save()

        # Objects, preserving OIDs, timestamps and version chains.
        for name in self._catalog.class_names():
            for oid in self.scan_class(name, include_subclasses=False):
                record = serializer.decode(self._heap.read(self._rid_of(oid)))
                state = self._catalog.upgrade_state(
                    record["c"], record["v"], record["s"]
                )
                chain = list(VersionChain(self._heap, record.get("p", 0)))
                new_head = 0
                for version in reversed(chain):  # oldest first
                    new_head = preserve_version(
                        target._heap, oid, version.timestamp,
                        version.state, new_head,
                    )
                definition = target._catalog.get(name)
                encoded = target._encode_record(
                    definition.class_id, record["v"], state,
                    new_head, record.get("ts", 0),
                )
                rid = target._heap.insert(encoded)
                target._directory.insert(oid, rid, disc=0)
                target._extent.insert(definition.class_id, oid, disc=oid)

        target._meta["next_oid"] = self._meta["next_oid"]
        target._meta["commit_ts"] = self._meta["commit_ts"]
        target._save_meta()
        for class_name, field in self._meta["indexes"]:
            target.create_index(class_name, field)
        target.checkpoint()

    # ------------------------------------------------------------------
    # Backup and restore (R10)
    # ------------------------------------------------------------------

    def backup(self, path: str) -> None:
        """Write a consistent snapshot of the database to ``path``.

        A checkpoint forces every committed page to the data file and
        truncates the WAL, after which the file alone *is* the
        database; the snapshot is a plain copy of it.  Requires no
        active transaction.
        """
        with self._mutex:
            self._require_open()
            if self._current is not None and self._current.write_set:
                raise TransactionError("cannot back up with uncommitted writes")
            self.checkpoint()
            self.vfs.copy(self.path, path)

    @staticmethod
    def restore(
        backup_path: str, db_path: str, vfs: Optional[VFS] = None
    ) -> None:
        """Replace the database at ``db_path`` with a backup snapshot.

        The target store must be closed.  Any leftover WAL beside the
        target is removed — its contents belong to the overwritten
        database, not the snapshot.
        """
        fs = vfs or RealVFS()
        fs.copy(backup_path, db_path)
        wal_path = db_path + ".wal"
        if fs.exists(wal_path):
            fs.remove(wal_path)

    def record_timestamp(self, oid: int) -> int:
        """The commit timestamp of an object's current committed state.

        The optimistic concurrency layer validates read sets against
        this: a changed timestamp means someone committed in between.
        """
        self._require_open()
        # Served from the decode cache without cloning: "ts" is a
        # scalar read, and the cache is invalidated by every commit
        # that touches the record — exactly the signal OCC validates.
        return self._cached_record(self._rid_of(oid)).get("ts", 0)

    # ------------------------------------------------------------------
    # Physical introspection (clustering ablation)
    # ------------------------------------------------------------------

    def page_of(self, oid: int) -> int:
        """The heap page currently holding an object's record."""
        self._require_open()
        from repro.engine.heap import rid_page

        return rid_page(self._rid_of(oid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "open" if self.is_open else "closed"
        return f"<ObjectStore {self.path!r} {status}>"
