"""The buffer pool: an LRU page cache with pin counts.

Every page access of the heap and the B+trees goes through
:class:`BufferPool`.  The pool caches up to ``capacity`` page frames;
unpinned frames are evicted least-recently-used, dirty frames are
written back on eviction and on :meth:`flush_all`.

The pool keeps hit/miss/eviction counters — the HyperModel's cold/warm
protocol is *about* this cache: a cold run faults pages in, the warm
run hits them, and :meth:`drop_cache` (called from the backend's
``close``) is what resets the database to cold state between operation
sequences (section 5.3(e)).

The pool's flush and eviction write-back paths reach the disk through
the :class:`PageFile` it is constructed over, whose I/O in turn crosses
the injected :class:`~repro.engine.vfs.VFS` seam — so a fault-injecting
VFS observes (and can crash) every page the pool writes, in
deterministic order.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from typing import Dict, Iterable, Iterator, Optional

from repro.engine.pages import PAGE_SIZE, PageFile, PageId
from repro.errors import PageError
from repro.obs import Instrumentation, resolve


@dataclasses.dataclass
class BufferStats:
    """Cumulative cache behaviour counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of page requests served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = self.writebacks = 0


class _Frame:
    __slots__ = ("pid", "data", "pin_count", "dirty", "lsn")

    def __init__(self, pid: PageId, data: bytearray, lsn: int) -> None:
        self.pid = pid
        self.data = data
        self.pin_count = 0
        self.dirty = False
        #: Pool-wide modification stamp for this frame's *content*.
        #: Bumped from one monotonic pool clock on every load and on
        #: every dirty unpin, so a ``(pid, lsn)`` pair identifies one
        #: immutable byte state — decode/node caches key on it.  The
        #: clock is global (never per-frame) so an evicted-and-reloaded
        #: page can never alias a stale cache entry.
        self.lsn = lsn


class BufferPool:
    """A fixed-capacity write-back page cache over one page file."""

    def __init__(
        self,
        page_file: PageFile,
        capacity: int = 256,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if capacity < 1:
            raise PageError("buffer pool capacity must be >= 1")
        self._file = page_file
        self.capacity = capacity
        #: The measurement handle; NO_OP unless instrumentation is on.
        #: B+trees and heaps constructed over this pool share it.
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        self._frames: "collections.OrderedDict[PageId, _Frame]" = (
            collections.OrderedDict()
        )
        #: Evictable frames (unpinned AND clean) in LRU order.  Kept in
        #: lockstep with frame state so victim selection is O(1) even
        #: when the pool is overcommitted with dirty pages.
        self._clean_lru: "collections.OrderedDict[PageId, None]" = (
            collections.OrderedDict()
        )
        #: Monotonic content clock feeding frame LSNs (see _Frame.lsn).
        self._mod_clock = 0
        self.stats = BufferStats()
        self._instr.gauge("engine.buffer.occupancy", self._occupancy)
        self._instr.gauge(
            "engine.buffer.hit_ratio", lambda: self.stats.hit_ratio
        )

    def _occupancy(self) -> float:
        """Resident pages as a fraction of pool capacity (0..1)."""
        return len(self._frames) / self.capacity

    def _next_lsn(self) -> int:
        self._mod_clock += 1
        return self._mod_clock

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------

    def get(self, pid: PageId) -> bytearray:
        """Pin a page and return its frame buffer.

        The caller must balance every ``get`` with an :meth:`unpin`.
        Mutating the returned buffer requires ``unpin(pid, dirty=True)``
        so the change is written back.
        """
        frame = self._frames.get(pid)
        if frame is not None:
            self.stats.hits += 1
            self._instr.count("engine.buffer.hit")
            self._frames.move_to_end(pid)
        else:
            self.stats.misses += 1
            self._instr.count("engine.buffer.miss")
            self._ensure_room()
            started = time.perf_counter()
            frame = _Frame(pid, self._file.read_page(pid), self._next_lsn())
            self._instr.observe(
                "engine.buffer.miss",
                (time.perf_counter() - started) * 1000.0,
            )
            self._frames[pid] = frame
        frame.pin_count += 1
        self._clean_lru.pop(pid, None)  # pinned: not evictable
        return frame.data

    def get_many(self, pids: "Iterable[PageId]") -> Dict[PageId, bytearray]:
        """Pin a batch of pages with one LRU promotion pass.

        Functionally ``{pid: get(pid)}`` (every page comes back pinned
        and must be unpinned), but resident pages are promoted in a
        single sweep and the hit/miss counters are bumped in aggregate —
        the per-ref ``move_to_end``/counter overhead of a frontier of
        demand ``get`` calls collapses to one pass.
        """
        out: Dict[PageId, bytearray] = {}
        hits = 0
        misses = 0
        for pid in pids:
            if pid in out:
                # Double-pin duplicates so unpin bookkeeping stays 1:1.
                self._frames[pid].pin_count += 1
                hits += 1
                continue
            frame = self._frames.get(pid)
            if frame is not None:
                hits += 1
                self._frames.move_to_end(pid)
            else:
                misses += 1
                self._ensure_room()
                started = time.perf_counter()
                frame = _Frame(
                    pid, self._file.read_page(pid), self._next_lsn()
                )
                self._instr.observe(
                    "engine.buffer.miss",
                    (time.perf_counter() - started) * 1000.0,
                )
                self._frames[pid] = frame
            frame.pin_count += 1
            self._clean_lru.pop(pid, None)  # pinned: not evictable
            out[pid] = frame.data
        if hits:
            self.stats.hits += hits
            self._instr.count("engine.buffer.hit", hits)
        if misses:
            self.stats.misses += misses
            self._instr.count("engine.buffer.miss", misses)
        return out

    def unpin(self, pid: PageId, dirty: bool = False) -> None:
        """Release one pin; mark the frame dirty if it was modified."""
        frame = self._frames.get(pid)
        if frame is None or frame.pin_count == 0:
            raise PageError(f"unpin of page {pid} that is not pinned")
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True
            frame.lsn = self._next_lsn()
        if frame.pin_count == 0 and not frame.dirty:
            self._clean_lru[pid] = None
            self._clean_lru.move_to_end(pid)

    def frame_lsn(self, pid: PageId) -> Optional[int]:
        """The resident frame's content stamp, or None if not cached.

        Valid as a cache key only while the caller holds a pin (an
        unpinned frame can be evicted and reloaded under a new LSN).
        """
        frame = self._frames.get(pid)
        return None if frame is None else frame.lsn

    def prefetch(self, pids: "Iterable[PageId]") -> int:
        """Fault a batch of pages into the pool without pinning them.

        The batched traversal path sorts a frontier's object refs by
        page and prefetches here, so the demand :meth:`get` calls that
        follow hit warm frames in clustering order instead of faulting
        one page per object.  Pages already resident are left alone
        (and keep their recency); loaded frames enter the pool clean,
        unpinned and evictable.  At most ``capacity`` pages are loaded
        per call — prefetching more would evict the batch's own head
        before its tail is used.

        Returns the number of pages actually read from the file.
        Counters: ``engine.buffer.prefetch.pages`` (loaded) and
        ``engine.buffer.prefetch.cached`` (already resident).  Demand
        hit/miss stats are *not* touched: a prefetch is speculative
        I/O, and the later ``get`` hits are the measured effect.
        """
        loaded = 0
        for pid in pids:
            if pid in self._frames:
                self._instr.count("engine.buffer.prefetch.cached")
                continue
            if loaded >= self.capacity:
                break
            self._ensure_room()
            frame = _Frame(pid, self._file.read_page(pid), self._next_lsn())
            self._frames[pid] = frame
            self._clean_lru[pid] = None  # clean + unpinned: evictable
            loaded += 1
            self._instr.count("engine.buffer.prefetch.pages")
        return loaded

    def new_page(self) -> PageId:
        """Allocate a fresh zeroed page and cache it (unpinned)."""
        pid = self._file.allocate()
        self._ensure_room()
        frame = _Frame(pid, bytearray(PAGE_SIZE), self._next_lsn())
        frame.dirty = True
        self._frames[pid] = frame
        return pid

    def free_page(self, pid: PageId) -> None:
        """Drop a page from the cache and return it to the file free list."""
        frame = self._frames.pop(pid, None)
        if frame is not None and frame.pin_count:
            raise PageError(f"freeing pinned page {pid}")
        self._clean_lru.pop(pid, None)
        self._file.free(pid)

    # ------------------------------------------------------------------
    # Eviction and flushing
    # ------------------------------------------------------------------

    def _ensure_room(self) -> None:
        """Make room for one more frame.

        Only *clean* unpinned frames are evicted: dirty pages must not
        reach the file before their commit's log records do (the
        write-ahead rule).  When every frame is dirty or pinned the
        pool grows past its nominal capacity; the store trims it back
        at the next commit, when the dirty set is logged and flushed.
        """
        while len(self._frames) >= self.capacity:
            victim = self._pick_victim()
            if victim is None:
                return  # overcommit until the next commit flush
            self._evict(victim)

    def _pick_victim(self) -> Optional[PageId]:
        while self._clean_lru:
            pid = next(iter(self._clean_lru))
            frame = self._frames.get(pid)
            if frame is not None and frame.pin_count == 0 and not frame.dirty:
                return pid
            self._clean_lru.pop(pid, None)  # stale entry: discard
        return None

    def trim(self) -> None:
        """Evict clean unpinned frames until within nominal capacity."""
        while len(self._frames) > self.capacity:
            victim = self._pick_victim()
            if victim is None:
                return
            self._evict(victim)

    def _evict(self, pid: PageId) -> None:
        frame = self._frames.pop(pid)
        self._clean_lru.pop(pid, None)
        if frame.dirty:
            self._file.write_page(pid, frame.data)
            self.stats.writebacks += 1
            self._instr.count("engine.buffer.writeback")
        self.stats.evictions += 1
        self._instr.count("engine.buffer.eviction")

    def flush_all(self) -> None:
        """Write back every dirty frame (frames stay cached)."""
        for frame in self._frames.values():
            if frame.dirty:
                self._file.write_page(frame.pid, frame.data)
                frame.dirty = False
                self.stats.writebacks += 1
                self._instr.count("engine.buffer.writeback")
            if frame.pin_count == 0 and frame.pid not in self._clean_lru:
                self._clean_lru[frame.pid] = None
        self.trim()

    def dirty_pages(self) -> Dict[PageId, bytes]:
        """Snapshot of every dirty frame's contents (for WAL logging)."""
        return {
            frame.pid: bytes(frame.data)
            for frame in self._frames.values()
            if frame.dirty
        }

    def drop_cache(self) -> None:
        """Flush and forget every frame: the next access is cold.

        This is the section 5.3(e) "close the database" step that stops
        caching from one operation sequence affecting the next.
        """
        if any(f.pin_count for f in self._frames.values()):
            raise PageError("cannot drop cache while pages are pinned")
        self.flush_all()
        self._frames.clear()
        self._clean_lru.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cached_pages(self) -> int:
        """Number of frames currently cached."""
        return len(self._frames)

    def cached_page_ids(self) -> Iterator[PageId]:
        """Iterate the cached page ids in LRU order (oldest first)."""
        return iter(list(self._frames))

    def pin_counts(self) -> Dict[PageId, int]:
        """Snapshot of non-zero pin counts (for invariant checks)."""
        return {
            pid: frame.pin_count
            for pid, frame in self._frames.items()
            if frame.pin_count
        }
