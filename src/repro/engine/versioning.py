"""Object version chains for temporal access (R5, section 6.8).

When a store is opened with ``versioned=True``, every committed update
of an object first preserves the object's previous state as an
immutable *version record* in the heap.  The live object's header
points at the newest version record; version records chain backwards,
each stamped with the **commit timestamp** (a monotonically increasing
logical clock persisted in the store metadata — wall time is never
used, keeping history deterministic).

This supports the paper's R5 experiments directly: retrieve the
previous version of a node, or the state of a node as of any past
time-point (a snapshot).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.engine import serializer
from repro.engine.heap import HeapFile, Rid
from repro.errors import RecordNotFoundError


@dataclasses.dataclass
class Version:
    """One historical state of an object."""

    oid: int
    timestamp: int
    state: dict
    previous_rid: int  # 0 terminates the chain


def encode_version(version: Version) -> bytes:
    """Serialize a version record for heap storage."""
    return serializer.encode(
        {
            "o": version.oid,
            "ts": version.timestamp,
            "s": version.state,
            "p": version.previous_rid,
        }
    )


def decode_version(raw: bytes) -> Version:
    """Deserialize a heap version record."""
    data = serializer.decode(raw)
    return Version(data["o"], data["ts"], data["s"], data["p"])


class VersionChain:
    """Read access to one object's history, newest first."""

    def __init__(self, heap: HeapFile, head_rid: Rid) -> None:
        self._heap = heap
        self._head_rid = head_rid

    def __iter__(self):
        rid = self._head_rid
        while rid:
            version = decode_version(self._heap.read(rid))
            yield version
            rid = version.previous_rid

    def newest(self) -> Optional[Version]:
        """The most recent preserved version (the pre-state of the
        latest update), or None if the object was never updated."""
        for version in self:
            return version
        return None

    def at(self, timestamp: int) -> Optional[Version]:
        """The version current as of ``timestamp``.

        Returns the newest preserved version whose timestamp is
        ``<= timestamp``, or None if the object did not exist yet (or
        only the live state — which the caller holds — applies).
        """
        for version in self:
            if version.timestamp <= timestamp:
                return version
        return None

    def all(self) -> List[Version]:
        """The full history, newest first."""
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)


def preserve_version(
    heap: HeapFile,
    oid: int,
    timestamp: int,
    state: dict,
    previous_rid: Rid,
) -> Rid:
    """Write one version record; returns its RID (the new chain head)."""
    return heap.insert(
        encode_version(Version(oid, timestamp, state, previous_rid))
    )


def read_version(heap: HeapFile, rid: Rid) -> Version:
    """Read one version record by RID.

    Raises:
        RecordNotFoundError: if the RID does not hold a record.
    """
    try:
        raw = heap.read(rid)
    except RecordNotFoundError:
        raise
    return decode_version(raw)
