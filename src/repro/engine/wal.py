"""A redo-only write-ahead log with checkpoints and recovery (R10).

The store uses **deferred updates**: a transaction's writes live in an
in-memory write set until commit.  At commit the store appends the
transaction's logical operations to the log, fsyncs it, and only then
applies them to the heap and indexes.  Because no uncommitted change
ever reaches a data page, recovery never needs to undo anything —
it simply *redoes* the logical operations of every committed
transaction recorded after the last checkpoint.

Log records are framed as ``length | crc32 | payload`` so a torn tail
write (the classic crash mode) is detected and cleanly ignored.

Record types:

* ``BEGIN txid``
* ``PUT txid oid state``   — logical: insert-or-update an object
* ``DELETE txid oid``      — logical: remove an object
* ``PAGE txid pid image``  — physical: post-image of a dirtied page
* ``ROOTS txid roots``     — physical: the header root-pointer table
* ``COMMIT txid``
* ``ABORT txid``           — informational; aborted work is never applied
* ``CHECKPOINT``           — everything before this point is on disk

The store's recovery path replays the *physical* records (page images
in commit order, then the last committed root table); the logical
records ride along for diagnostics and for the logical-replay tests.
"""

from __future__ import annotations

import dataclasses
import os
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine import serializer
from repro.errors import RecoveryError
from repro.obs import Instrumentation, resolve

BEGIN = "B"
PUT = "P"
DELETE = "D"
PAGE = "G"
ROOTS = "R"
COMMIT = "C"
ABORT = "A"
CHECKPOINT = "K"

_DATA_KINDS = (PUT, DELETE, PAGE, ROOTS)

_FRAME = struct.Struct("<II")  # payload length, crc32


@dataclasses.dataclass
class LogRecord:
    """One decoded log record."""

    kind: str
    txid: int = 0
    oid: int = 0
    state: Optional[dict] = None

    def to_payload(self) -> bytes:
        """Serialize the record body."""
        return serializer.encode(
            {"k": self.kind, "t": self.txid, "o": self.oid, "s": self.state}
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "LogRecord":
        """Decode a record body."""
        raw = serializer.decode(payload)
        return cls(
            kind=raw["k"], txid=raw["t"], oid=raw["o"], state=raw["s"]
        )


class WriteAheadLog:
    """Append-only log file with group-commit-style fsync."""

    def __init__(
        self,
        path: str,
        sync_on_commit: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.path = path
        self.sync_on_commit = sync_on_commit
        self._file = open(path, "ab+")
        self.records_written = 0
        self.syncs = 0
        self._instr = resolve(instrumentation)

    def close(self) -> None:
        """Flush and close the log file."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Append one record (buffered; not yet durable)."""
        payload = record.to_payload()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        self._file.write(frame + payload)
        self.records_written += 1
        self._instr.count("engine.wal.records")
        self._instr.count("engine.wal.bytes", _FRAME.size + len(payload))

    def sync(self) -> None:
        """Force appended records to stable storage (the commit point)."""
        self._file.flush()
        if self.sync_on_commit:
            os.fsync(self._file.fileno())
        self.syncs += 1
        self._instr.count("engine.wal.syncs")

    def log_commit(self, txid: int, operations: List[LogRecord]) -> None:
        """Write BEGIN + operations + COMMIT and make them durable."""
        with self._instr.span("wal.commit"):
            self.append(LogRecord(BEGIN, txid=txid))
            for op in operations:
                self.append(op)
            self.append(LogRecord(COMMIT, txid=txid))
            self.sync()

    def log_checkpoint(self) -> None:
        """Record that all prior changes are on data pages, then truncate.

        Truncation is safe because recovery only replays records after
        the last checkpoint; an empty log means a clean database.
        """
        self._file.truncate(0)
        self._file.seek(0)
        self.append(LogRecord(CHECKPOINT))
        self.sync()

    # ------------------------------------------------------------------
    # Reading and recovery
    # ------------------------------------------------------------------

    def read_all(self) -> Iterator[LogRecord]:
        """Iterate every intact record; stop cleanly at a torn tail."""
        self._file.flush()
        with open(self.path, "rb") as f:
            while True:
                frame = f.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    return
                length, crc = _FRAME.unpack(frame)
                payload = f.read(length)
                if len(payload) < length:
                    return  # torn tail write
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    return  # corrupt tail
                try:
                    yield LogRecord.from_payload(payload)
                except Exception as exc:  # corrupt but checksummed? bail out
                    raise RecoveryError(f"undecodable log record: {exc}") from exc

    def recover_operations(self) -> List[Tuple[int, List[LogRecord]]]:
        """Return the redo work list: committed transactions in order.

        Scans the log after the last checkpoint, collects each
        transaction's PUT/DELETE records, and returns only those whose
        COMMIT made it to disk, in commit order.  Incomplete or aborted
        transactions are dropped (their changes never touched data
        pages, so dropping them *is* the undo).
        """
        pending: Dict[int, List[LogRecord]] = {}
        committed: List[Tuple[int, List[LogRecord]]] = []
        for record in self.read_all():
            if record.kind == CHECKPOINT:
                pending.clear()
                committed.clear()
            elif record.kind == BEGIN:
                pending[record.txid] = []
            elif record.kind in _DATA_KINDS:
                pending.setdefault(record.txid, []).append(record)
            elif record.kind == COMMIT:
                if record.txid in pending:
                    committed.append((record.txid, pending.pop(record.txid)))
            elif record.kind == ABORT:
                pending.pop(record.txid, None)
            else:
                raise RecoveryError(f"unknown log record kind {record.kind!r}")
        return committed


def put_record(txid: int, oid: int, state: Any) -> LogRecord:
    """Build a PUT record for an object's post-state."""
    return LogRecord(PUT, txid=txid, oid=oid, state=state)


def delete_record(txid: int, oid: int) -> LogRecord:
    """Build a DELETE record for an object."""
    return LogRecord(DELETE, txid=txid, oid=oid)


def page_record(txid: int, pid: int, image: bytes) -> LogRecord:
    """Build a PAGE record holding a zlib-compressed page post-image."""
    return LogRecord(
        PAGE, txid=txid, oid=pid, state={"z": zlib.compress(bytes(image), 1)}
    )


def page_image(record: LogRecord) -> bytes:
    """Decompress the page image of a PAGE record."""
    return zlib.decompress(record.state["z"])


def roots_record(txid: int, roots: Dict[str, int]) -> LogRecord:
    """Build a ROOTS record snapshotting the header root pointers."""
    return LogRecord(ROOTS, txid=txid, state=dict(roots))
