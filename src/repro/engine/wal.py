"""A redo-only write-ahead log with checkpoints and recovery (R10).

The store uses **deferred updates**: a transaction's writes live in an
in-memory write set until commit.  At commit the store appends the
transaction's logical operations to the log, fsyncs it, and only then
applies them to the heap and indexes.  Because no uncommitted change
ever reaches a data page, recovery never needs to undo anything —
it simply *redoes* the logical operations of every committed
transaction recorded after the last checkpoint.

Log records are framed as ``length | crc32 | payload`` so a torn tail
write (the classic crash mode) is detected and cleanly ignored.

Record types:

* ``BEGIN txid``
* ``PUT txid oid state``   — logical: insert-or-update an object
* ``DELETE txid oid``      — logical: remove an object
* ``PAGE txid pid image``  — physical: post-image of a dirtied page
* ``ROOTS txid roots``     — physical: the header root-pointer table
* ``PREPARE txid``         — two-phase commit vote: the transaction's
  operations are durable but the *decision* belongs to a coordinator
* ``COMMIT txid``
* ``ABORT txid``           — informational; aborted work is never applied
* ``CHECKPOINT``           — everything before this point is on disk

The store's recovery path replays the *physical* records (page images
in commit order, then the last committed root table); the logical
records ride along for diagnostics and for the logical-replay tests.

**Two-phase commit and presumed abort.**  A participant in a
distributed commit logs ``BEGIN + operations + PREPARE`` (force-synced
— a yes vote must survive a crash) and only applies the operations
when the coordinator's decision arrives as a ``COMMIT`` or ``ABORT``
record.  A transaction whose log ends at ``PREPARE`` is **in doubt**:
:meth:`WriteAheadLog.recover_operations` never replays it (so plain
recovery follows *presumed abort* — an undecided transaction is not
redone), and :meth:`WriteAheadLog.recover_in_doubt` surfaces it so a
recovery driver can ask the coordinator's decision log and either
replay (``COMMIT``) or forget (``ABORT``) it deterministically.
"""

from __future__ import annotations

import dataclasses
import struct
import time
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine import serializer
from repro.engine.vfs import VFS, RealVFS
from repro.errors import RecoveryError
from repro.obs import Instrumentation, resolve

BEGIN = "B"
PUT = "P"
DELETE = "D"
PAGE = "G"
ROOTS = "R"
PREPARE = "E"
COMMIT = "C"
ABORT = "A"
CHECKPOINT = "K"

_DATA_KINDS = (PUT, DELETE, PAGE, ROOTS)

_FRAME = struct.Struct("<II")  # payload length, crc32


@dataclasses.dataclass
class LogRecord:
    """One decoded log record."""

    kind: str
    txid: int = 0
    oid: int = 0
    state: Optional[dict] = None

    def to_payload(self) -> bytes:
        """Serialize the record body."""
        return serializer.encode(
            {"k": self.kind, "t": self.txid, "o": self.oid, "s": self.state}
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "LogRecord":
        """Decode a record body.

        Accepts a ``memoryview`` frame as well as bytes — recovery
        decodes straight out of the read buffer without an extra copy.
        """
        raw = serializer.decode_view(payload)
        return cls(
            kind=raw["k"], txid=raw["t"], oid=raw["o"], state=raw["s"]
        )


class WriteAheadLog:
    """Append-only log file with optional group commit.

    Args:
        path: the log file.
        sync_on_commit: fsync at each commit point.  Tests and
            benchmark-mode stores disable it.
        instrumentation: counter/span sink (``engine.wal.*``).
        vfs: the file-system seam; defaults to the real one.  The store
            passes its (counting, possibly fault-injecting) VFS here so
            the log's I/O is observed with everything else.
        group_commit: batch consecutive commits into one fsync.  A
            commit's records are still *written* (and flushed to the OS)
            immediately — crash *consistency* is unchanged — but the
            fsync is deferred until ``group_commit_size`` commits have
            accumulated, a checkpoint runs, or the log closes.  The
            durability relaxation is bounded: at most the last
            ``group_commit_size - 1`` commits can be lost to a power
            failure, each atomically.
        group_commit_size: commits per fsync in group-commit mode.
    """

    def __init__(
        self,
        path: str,
        sync_on_commit: bool = True,
        instrumentation: Optional[Instrumentation] = None,
        vfs: Optional[VFS] = None,
        group_commit: bool = False,
        group_commit_size: int = 8,
    ) -> None:
        if group_commit_size < 1:
            raise ValueError("group_commit_size must be >= 1")
        self.path = path
        self.sync_on_commit = sync_on_commit
        self.vfs = vfs or RealVFS()
        self.group_commit = group_commit
        self.group_commit_size = group_commit_size
        self._file = self.vfs.open(path, "ab+")
        self.records_written = 0
        self.syncs = 0
        #: Commits whose fsync is still pending (group-commit mode).
        self.pending_commits = 0
        self._instr = resolve(instrumentation)
        self._instr.gauge(
            "engine.wal.backlog", lambda: float(self.pending_commits)
        )
        self._instr.gauge("engine.wal.batch_fill", self._batch_fill)

    def _batch_fill(self) -> float:
        """Group-commit batch fill: pending commits over batch size."""
        return self.pending_commits / self.group_commit_size

    def close(self) -> None:
        """Flush (fsyncing any pending group) and close the log file."""
        if self._file is not None:
            if self.pending_commits:
                self.sync(force=True)
            self._file.flush()
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Append one record (buffered; not yet durable)."""
        payload = record.to_payload()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        self._file.write(frame + payload)
        self.records_written += 1
        self._instr.count("engine.wal.records")
        self._instr.count("engine.wal.bytes", _FRAME.size + len(payload))

    def sync(self, force: bool = False) -> bool:
        """Force appended records to stable storage (the commit point).

        In group-commit mode the fsync is deferred until
        ``group_commit_size`` commits are pending (or ``force=True``);
        deferred calls still flush to the OS so readers observe the
        records.  Returns whether a real durability point was taken.
        """
        if self.group_commit and not force:
            self.pending_commits += 1
            if self.pending_commits < self.group_commit_size:
                self._file.flush()
                self._instr.count("engine.wal.group_commit.deferred")
                return False
            self._instr.count("engine.wal.group_commit.batches")
        self._file.flush()
        if self.sync_on_commit:
            started = time.perf_counter()
            self._file.sync()
            self._instr.observe(
                "engine.wal.fsync", (time.perf_counter() - started) * 1000.0
            )
        self.pending_commits = 0
        self.syncs += 1
        self._instr.count("engine.wal.syncs")
        return True

    def log_commit(self, txid: int, operations: List[LogRecord]) -> bool:
        """Write BEGIN + operations + COMMIT and make them durable.

        Returns whether the records reached a durability point (always
        true outside group-commit mode; in group-commit mode, true only
        on the commit that closes a batch).
        """
        with self._instr.span("wal.commit"):
            self.append(LogRecord(BEGIN, txid=txid))
            for op in operations:
                self.append(op)
            self.append(LogRecord(COMMIT, txid=txid))
            return self.sync()

    def log_prepare(self, txid: int, operations: List[LogRecord]) -> bool:
        """Write BEGIN + operations + PREPARE and **force** durability.

        This is a two-phase-commit participant's yes vote: once this
        method returns, the transaction's operations and the fact that
        it voted yes survive any crash, so the coordinator may count
        the vote.  The sync is forced even in group-commit mode —
        deferring a vote would let a crash silently retract it.
        """
        with self._instr.span("wal.prepare"):
            self.append(LogRecord(BEGIN, txid=txid))
            for op in operations:
                self.append(op)
            self.append(LogRecord(PREPARE, txid=txid))
            return self.sync(force=True)

    def log_decision(self, txid: int, committed: bool) -> bool:
        """Record the coordinator's decision for a prepared transaction.

        Appends ``COMMIT`` (and forces a durability point — the
        decision must stick) or ``ABORT`` (flushed with the next sync;
        presumed abort means losing it is harmless: an undecided
        transaction aborts anyway).
        """
        with self._instr.span("wal.decision"):
            if committed:
                self.append(LogRecord(COMMIT, txid=txid))
                return self.sync(force=True)
            self.append(LogRecord(ABORT, txid=txid))
            self._file.flush()
            return False

    def log_checkpoint(self) -> None:
        """Record that all prior changes are on data pages, then truncate.

        Truncation is safe because recovery only replays records after
        the last checkpoint; an empty log means a clean database.
        """
        self._file.truncate(0)
        self._file.seek(0)
        self.append(LogRecord(CHECKPOINT))
        self.sync(force=True)

    # ------------------------------------------------------------------
    # Reading and recovery
    # ------------------------------------------------------------------

    def read_all(self) -> Iterator[LogRecord]:
        """Iterate every intact record; stop cleanly at a torn tail."""
        for record, _offset in self.read_from(0):
            yield record

    def read_from(self, offset: int = 0) -> Iterator[Tuple[LogRecord, int]]:
        """Resumable tail-read: intact records starting at byte ``offset``.

        Yields ``(record, end_offset)`` pairs where ``end_offset`` is the
        byte position just past the record's frame — feed the last one
        back in to continue where a previous scan stopped, so a log
        shipper (or a reopen loop) never re-decodes history it has
        already consumed.  ``offset`` must be a frame boundary previously
        returned by this method (or 0).  Stops cleanly at a torn,
        zero-filled or CRC-corrupt tail, exactly like :meth:`read_all`.
        """
        self._file.flush()
        with self.vfs.open(self.path, "rb") as f:
            if offset:
                f.seek(offset)
            position = offset
            while True:
                frame = f.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    return  # torn mid-frame-header (or clean EOF)
                length, crc = _FRAME.unpack(frame)
                if length == 0:
                    # A zero-length frame with a matching CRC is what a
                    # zero-filled tail block looks like (crc32(b"") is
                    # 0): treat it as end-of-log, not as a record.
                    return
                payload = f.read(length)
                if len(payload) < length:
                    return  # torn tail write
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    return  # corrupt tail
                position += _FRAME.size + length
                try:
                    # Decode through a view: the record's strings and
                    # byte blobs are carved straight out of the read
                    # buffer instead of through intermediate slices.
                    yield LogRecord.from_payload(memoryview(payload)), position
                except RecoveryError:
                    raise
                except Exception as exc:  # corrupt but checksummed? bail out
                    raise RecoveryError(f"undecodable log record: {exc}") from exc

    def recover_operations(self) -> List[Tuple[int, List[LogRecord]]]:
        """Return the redo work list: committed transactions in order.

        Scans the log after the last checkpoint, collects each
        transaction's PUT/DELETE records, and returns only those whose
        COMMIT made it to disk, in commit order.  Incomplete or aborted
        transactions are dropped (their changes never touched data
        pages, so dropping them *is* the undo).  A transaction whose
        log ends at PREPARE is in doubt and likewise **not** returned —
        presumed abort; :meth:`recover_in_doubt` lists those separately
        for a coordinator-aware recovery driver.
        """
        return self.recover()[0]

    def recover_in_doubt(self) -> List[Tuple[int, List[LogRecord]]]:
        """Prepared-but-undecided transactions, in prepare order.

        These are the transactions whose PREPARE record is on disk but
        whose COMMIT/ABORT is not: a two-phase-commit participant that
        crashed between voting and learning the outcome.  The caller
        resolves each against the coordinator's decision log — replay
        on COMMIT, forget on ABORT (and an unknown transaction *is* an
        abort: presumed abort).
        """
        return self.recover()[1]

    def recover(
        self,
    ) -> Tuple[
        List[Tuple[int, List[LogRecord]]], List[Tuple[int, List[LogRecord]]]
    ]:
        """One scan, both work lists: ``(committed, in_doubt)``.

        Recovery drivers need both the redo list and the in-doubt list;
        calling :meth:`recover_operations` and :meth:`recover_in_doubt`
        separately used to decode the whole log twice per reopen.  This
        runs the two state machines over a single :meth:`read_from`
        pass.
        """
        pending: Dict[int, List[LogRecord]] = {}
        committed: List[Tuple[int, List[LogRecord]]] = []
        prepared: Dict[int, List[LogRecord]] = {}
        order: List[int] = []
        for record, _offset in self.read_from(0):
            if record.kind == CHECKPOINT:
                pending.clear()
                committed.clear()
                prepared.clear()
                order.clear()
            elif record.kind == BEGIN:
                pending[record.txid] = []
            elif record.kind in _DATA_KINDS:
                pending.setdefault(record.txid, []).append(record)
            elif record.kind == PREPARE:
                # The vote is durable but the decision is not ours to
                # make here; the records stay pending (and in doubt)
                # until a COMMIT or ABORT decides them.
                if record.txid in pending and record.txid not in prepared:
                    prepared[record.txid] = pending[record.txid]
                    order.append(record.txid)
            elif record.kind == COMMIT:
                if record.txid in pending:
                    committed.append((record.txid, pending.pop(record.txid)))
                if prepared.pop(record.txid, None) is not None:
                    order.remove(record.txid)
            elif record.kind == ABORT:
                pending.pop(record.txid, None)
                if prepared.pop(record.txid, None) is not None:
                    order.remove(record.txid)
            else:
                raise RecoveryError(f"unknown log record kind {record.kind!r}")
        return committed, [(txid, prepared[txid]) for txid in order]


def put_record(txid: int, oid: int, state: Any) -> LogRecord:
    """Build a PUT record for an object's post-state."""
    return LogRecord(PUT, txid=txid, oid=oid, state=state)


def delete_record(txid: int, oid: int) -> LogRecord:
    """Build a DELETE record for an object."""
    return LogRecord(DELETE, txid=txid, oid=oid)


def page_record(txid: int, pid: int, image: bytes) -> LogRecord:
    """Build a PAGE record holding a zlib-compressed page post-image."""
    return LogRecord(
        PAGE, txid=txid, oid=pid, state={"z": zlib.compress(bytes(image), 1)}
    )


def page_image(record: LogRecord) -> bytes:
    """Decompress the page image of a PAGE record."""
    return zlib.decompress(record.state["z"])


def roots_record(txid: int, roots: Dict[str, int]) -> LogRecord:
    """Build a ROOTS record snapshotting the header root pointers."""
    return LogRecord(ROOTS, txid=txid, state=dict(roots))
