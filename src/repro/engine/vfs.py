"""The virtual file system: every engine byte crosses this seam.

The storage engine used to call ``open()`` / ``os.fsync`` directly from
:mod:`repro.engine.pages`, :mod:`repro.engine.wal` and
:mod:`repro.engine.store`, which made the R10 recoverability story an
*assertion*: nothing could crash the store mid-commit and watch it come
back.  This module funnels all of that through two small protocols —
:class:`VFS` (path-level operations) and :class:`VFSFile` (handle-level
operations) — with three implementations:

* :class:`RealVFS` — the default; thin wrappers over the standard
  library, behaviourally identical to the old direct calls.
* :class:`CountingVFS` — a decorator feeding the ``engine.io.*``
  counter namespace of :mod:`repro.obs` (opens, reads, writes, syncs,
  bytes in either direction), so the harness can report physical I/O
  next to buffer-pool hit rates.
* :class:`FaultInjectingVFS` — a decorator that deterministically
  (seeded) injects faults at the Nth *mutating* I/O operation: raise,
  short-write, torn-write-then-crash, drop-fsync, or full simulated
  crash after which every further mutation raises
  :class:`SimulatedCrash`.  The crash matrix in
  :mod:`repro.harness.crashtest` is built on this.

The injected VFS is threaded through :class:`~repro.engine.pages.PageFile`,
:class:`~repro.engine.wal.WriteAheadLog` and
:class:`~repro.engine.store.ObjectStore` (and from there through the
``oodb`` backend and ``create_backend(..., vfs=...)``), so a single
decorator instance observes the complete I/O stream of one database in
deterministic order.
"""

from __future__ import annotations

import os
import random
import shutil
from typing import BinaryIO, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs import Instrumentation, resolve

__all__ = [
    "VFS",
    "VFSFile",
    "RealVFS",
    "RealVFSFile",
    "MemoryVFS",
    "MemoryVFSFile",
    "CountingVFS",
    "FaultInjectingVFS",
    "FaultInjectedError",
    "SimulatedCrash",
    "FAULT_KINDS",
]


class SimulatedCrash(StorageError):
    """The process 'died' at an injected crash point.

    Raised by :class:`FaultInjectingVFS` at the scheduled operation and
    by every *mutating* operation thereafter: a crashed process cannot
    write.  Reads keep working so post-mortem inspection is possible,
    but the crash-matrix harness reopens the files through a fresh
    :class:`RealVFS` instead.
    """


class FaultInjectedError(StorageError):
    """A transient injected I/O failure (the ``fail`` fault kind)."""


#: The supported one-shot fault kinds of :meth:`FaultInjectingVFS.fail_at`.
FAULT_KINDS = ("fail", "short_write", "torn_write", "drop_fsync", "crash")


class VFSFile:
    """Protocol for one open file handle.

    Concrete implementations wrap (or decorate) a binary file object.
    ``sync`` is the durability point — flush to the OS *and* force the
    OS to stable storage — kept distinct from ``flush`` so fault
    injection can drop exactly the fsync semantics.
    """

    path: str

    def read(self, size: int = -1) -> bytes:
        raise NotImplementedError

    def write(self, data: bytes) -> int:
        raise NotImplementedError

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        raise NotImplementedError

    def tell(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int) -> int:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush and fsync: force the file to stable storage."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    def __enter__(self) -> "VFSFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class VFS:
    """Protocol for path-level filesystem operations.

    Everything the engine does to the filesystem — opening page files
    and logs, probing sizes, and the vacuum/backup/restore file shuffles
    — goes through one of these.
    """

    def open(self, path: str, mode: str) -> VFSFile:
        """Open ``path`` in binary ``mode`` (``rb``/``r+b``/``w+b``/``ab+``)."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def size(self, path: str) -> int:
        """File size in bytes; 0 for a missing file."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        """Delete a file (missing files are tolerated)."""
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst``."""
        raise NotImplementedError

    def copy(self, src: str, dst: str) -> None:
        """Copy a file's contents (the backup primitive)."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# The real thing
# ----------------------------------------------------------------------


class RealVFSFile(VFSFile):
    """A :class:`VFSFile` over a standard binary file object."""

    def __init__(self, path: str, handle: BinaryIO) -> None:
        self.path = path
        self._handle = handle

    def read(self, size: int = -1) -> bytes:
        return self._handle.read(size)

    def write(self, data: bytes) -> int:
        return self._handle.write(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._handle.seek(offset, whence)

    def tell(self) -> int:
        return self._handle.tell()

    def truncate(self, size: int) -> int:
        return self._handle.truncate(size)

    def flush(self) -> None:
        self._handle.flush()

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<RealVFSFile {self.path!r} {state}>"


class RealVFS(VFS):
    """The default VFS: plain standard-library filesystem access."""

    def open(self, path: str, mode: str) -> VFSFile:
        return RealVFSFile(path, open(path, mode))

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def size(self, path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def remove(self, path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def copy(self, src: str, dst: str) -> None:
        shutil.copyfile(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RealVFS>"


# ----------------------------------------------------------------------
# In-memory filesystem
# ----------------------------------------------------------------------


class MemoryVFSFile(VFSFile):
    """A :class:`VFSFile` over a shared in-memory buffer.

    The buffer is the ``bytearray`` held in the owning
    :class:`MemoryVFS`'s file table; like a POSIX descriptor, a handle
    keeps its buffer alive even if the path is removed or replaced
    underneath it.
    """

    def __init__(self, path: str, buffer: bytearray, append: bool) -> None:
        self.path = path
        self._buffer = buffer
        self._append = append
        self._pos = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"I/O operation on closed file {self.path!r}")

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if size is None or size < 0:
            data = bytes(self._buffer[self._pos:])
        else:
            data = bytes(self._buffer[self._pos:self._pos + size])
        self._pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        self._check_open()
        if self._append:
            self._pos = len(self._buffer)
        end = self._pos + len(data)
        if self._pos > len(self._buffer):
            # Sparse write past EOF: zero-fill the gap, like a real file.
            self._buffer.extend(b"\0" * (self._pos - len(self._buffer)))
        self._buffer[self._pos:end] = data
        self._pos = end
        return len(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._check_open()
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        elif whence == os.SEEK_END:
            self._pos = len(self._buffer) + offset
        else:
            raise ValueError(f"invalid whence {whence!r}")
        if self._pos < 0:
            raise OSError("negative seek position")
        return self._pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    def truncate(self, size: int) -> int:
        self._check_open()
        if size < len(self._buffer):
            del self._buffer[size:]
        else:
            self._buffer.extend(b"\0" * (size - len(self._buffer)))
        return size

    def flush(self) -> None:
        self._check_open()

    def sync(self) -> None:
        self._check_open()

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<MemoryVFSFile {self.path!r} {state}>"


class MemoryVFS(VFS):
    """A fully in-memory VFS: one ``bytearray`` per path.

    Backs components that want real file semantics — append, seek,
    truncate, torn tails — without touching the filesystem, such as the
    replication layer's primary WAL (see :mod:`repro.replication`).
    ``sync`` is a no-op (memory *is* the stable storage here), so
    durability faults are modelled by wrapping a :class:`MemoryVFS` in
    a :class:`FaultInjectingVFS`, whose decisions fire before the bytes
    reach the buffer.
    """

    def __init__(self) -> None:
        self._files: dict = {}

    def open(self, path: str, mode: str) -> VFSFile:
        if "w" in mode:
            self._files[path] = bytearray()
        elif path not in self._files:
            if "a" not in mode:
                # "rb" / "r+b" require the file to exist, like open().
                raise FileNotFoundError(f"no such in-memory file: {path!r}")
            self._files[path] = bytearray()
        return MemoryVFSFile(path, self._files[path], append="a" in mode)

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        buffer = self._files.get(path)
        return 0 if buffer is None else len(buffer)

    def remove(self, path: str) -> None:
        self._files.pop(path, None)

    def replace(self, src: str, dst: str) -> None:
        if src not in self._files:
            raise FileNotFoundError(f"no such in-memory file: {src!r}")
        self._files[dst] = self._files.pop(src)

    def copy(self, src: str, dst: str) -> None:
        if src not in self._files:
            raise FileNotFoundError(f"no such in-memory file: {src!r}")
        self._files[dst] = bytearray(self._files[src])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryVFS {len(self._files)} files>"


# ----------------------------------------------------------------------
# Counting decorator (engine.io.* namespace)
# ----------------------------------------------------------------------


class _CountingFile(VFSFile):
    def __init__(self, inner: VFSFile, instr: Instrumentation) -> None:
        self.path = inner.path
        self._inner = inner
        self._instr = instr

    def read(self, size: int = -1) -> bytes:
        data = self._inner.read(size)
        self._instr.count("engine.io.reads")
        self._instr.count("engine.io.bytes_read", len(data))
        return data

    def write(self, data: bytes) -> int:
        written = self._inner.write(data)
        self._instr.count("engine.io.writes")
        self._instr.count("engine.io.bytes_written", written)
        return written

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def truncate(self, size: int) -> int:
        self._instr.count("engine.io.truncates")
        return self._inner.truncate(size)

    def flush(self) -> None:
        self._inner.flush()

    def sync(self) -> None:
        self._instr.count("engine.io.syncs")
        self._inner.sync()

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class CountingVFS(VFS):
    """Decorator that counts every I/O operation into ``engine.io.*``.

    Counters: ``engine.io.opens``, ``engine.io.reads``,
    ``engine.io.writes``, ``engine.io.syncs``, ``engine.io.truncates``,
    ``engine.io.bytes_read``, ``engine.io.bytes_written``.  The store
    wraps its injected VFS in one of these automatically so physical
    I/O shows up in every counter report without further wiring.
    """

    def __init__(
        self,
        base: Optional[VFS] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.base = base or RealVFS()
        self._instr = resolve(instrumentation)

    def open(self, path: str, mode: str) -> VFSFile:
        self._instr.count("engine.io.opens")
        return _CountingFile(self.base.open(path, mode), self._instr)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def size(self, path: str) -> int:
        return self.base.size(path)

    def remove(self, path: str) -> None:
        self.base.remove(path)

    def replace(self, src: str, dst: str) -> None:
        self.base.replace(src, dst)

    def copy(self, src: str, dst: str) -> None:
        self.base.copy(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CountingVFS over {self.base!r}>"


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------


class _FaultingFile(VFSFile):
    """File decorator that consults the owning VFS before mutating."""

    def __init__(self, inner: VFSFile, owner: "FaultInjectingVFS") -> None:
        self.path = inner.path
        self._inner = inner
        self._owner = owner

    def read(self, size: int = -1) -> bytes:
        return self._inner.read(size)

    def write(self, data: bytes) -> int:
        action = self._owner._before_mutation("write", self.path)
        if action == "short_write":
            keep = self._owner._partial_length(len(data))
            self._inner.write(data[:keep])
            return len(data)  # the caller believes the write completed
        if action == "torn_write":
            keep = self._owner._partial_length(len(data))
            if keep:
                self._inner.write(data[:keep])
                self._inner.flush()
            raise SimulatedCrash(
                f"torn write ({keep}/{len(data)} bytes) on {self.path}"
            )
        return self._inner.write(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def truncate(self, size: int) -> int:
        self._owner._before_mutation("truncate", self.path)
        return self._inner.truncate(size)

    def flush(self) -> None:
        self._inner.flush()

    def sync(self) -> None:
        action = self._owner._before_mutation("sync", self.path)
        if action == "drop_fsync":
            self._inner.flush()  # data reaches the OS but not the platter
            return
        self._inner.sync()

    def close(self) -> None:
        # Closing is always allowed: the crashed harness must be able to
        # release OS handles without writing anything further.
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class FaultInjectingVFS(VFS):
    """A VFS decorator with deterministic, seeded fault injection.

    The decorator numbers every *mutating* operation (write, sync,
    truncate, remove, replace, copy) 1, 2, 3, ... in call order — the
    sequence is deterministic because the engine above it is — and
    triggers scheduled faults when their operation number comes up:

    * ``fail``        — raise :class:`FaultInjectedError` once (a
      transient error the caller may surface or retry);
    * ``short_write`` — persist only a seeded prefix of the buffer but
      report success (silent partial write);
    * ``torn_write``  — persist a seeded prefix, then die with
      :class:`SimulatedCrash` (the classic torn tail);
    * ``drop_fsync``  — turn that one ``sync`` into a flush (the
      battery-less disk cache lying about durability);
    * ``crash``       — die with :class:`SimulatedCrash` *before* the
      operation touches the file; every later mutation also raises.

    ``seed`` drives the partial-write lengths so a given schedule
    replays byte-identically.  :attr:`mutation_ops` exposes the running
    operation count; a counting pre-pass uses it to size a crash
    matrix (see :mod:`repro.harness.crashtest`).
    """

    def __init__(self, base: Optional[VFS] = None, seed: int = 0) -> None:
        self.base = base or RealVFS()
        self.seed = seed
        self._rng = random.Random(seed)
        self.mutation_ops = 0
        self.crashed = False
        self._schedule: List[Tuple[int, str]] = []
        #: (op number, action, kind, path) log of every fired fault.
        self.fired: List[Tuple[int, str, str]] = []

    # -- scheduling ------------------------------------------------------

    def fail_at(self, op: int, kind: str = "fail") -> "FaultInjectingVFS":
        """Schedule fault ``kind`` for the Nth mutating operation.

        Returns ``self`` so schedules chain fluently.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if op < 1:
            raise ValueError("operation numbers start at 1")
        self._schedule.append((op, kind))
        return self

    def crash_at(self, op: int, torn: bool = False) -> "FaultInjectingVFS":
        """Schedule a simulated crash at the Nth mutating operation.

        With ``torn=True`` a write at the crash point persists a seeded
        prefix first — the torn-tail crash mode.
        """
        return self.fail_at(op, "torn_write" if torn else "crash")

    # -- the injection point ---------------------------------------------

    def _before_mutation(self, op: str, path: str) -> Optional[str]:
        """Advance the op counter; return the action for this op."""
        if self.crashed:
            raise SimulatedCrash(
                f"{op} on {path} after simulated crash (op {self.mutation_ops})"
            )
        self.mutation_ops += 1
        action: Optional[str] = None
        for index, (at, kind) in enumerate(self._schedule):
            if at == self.mutation_ops:
                action = kind
                del self._schedule[index]
                break
        if action is None:
            return None
        self.fired.append((self.mutation_ops, action, path))
        if action == "crash":
            self.crashed = True
            raise SimulatedCrash(
                f"simulated crash before {op} on {path} "
                f"(mutating op {self.mutation_ops})"
            )
        if action == "torn_write":
            if op == "write":
                self.crashed = True
                return action  # the file wrapper tears, then dies
            # Torn semantics degrade to a clean crash for non-writes.
            self.crashed = True
            raise SimulatedCrash(
                f"simulated crash before {op} on {path} "
                f"(mutating op {self.mutation_ops})"
            )
        if action == "fail":
            raise FaultInjectedError(
                f"injected {op} failure on {path} "
                f"(mutating op {self.mutation_ops})"
            )
        if action == "short_write" and op != "write":
            return None  # nothing to shorten; the op proceeds
        if action == "drop_fsync" and op != "sync":
            return None
        return action

    def _partial_length(self, total: int) -> int:
        """Seeded prefix length for short/torn writes (never the whole)."""
        if total <= 1:
            return 0
        return self._rng.randrange(0, total)

    # -- VFS surface -----------------------------------------------------

    def open(self, path: str, mode: str) -> VFSFile:
        # Opening for write ("w+b") truncates: that is a mutation.
        if self.crashed and any(flag in mode for flag in ("w", "a", "+")):
            raise SimulatedCrash(
                f"open({mode!r}) on {path} after simulated crash"
            )
        return _FaultingFile(self.base.open(path, mode), self)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def size(self, path: str) -> int:
        return self.base.size(path)

    def remove(self, path: str) -> None:
        self._before_mutation("remove", path)
        self.base.remove(path)

    def replace(self, src: str, dst: str) -> None:
        self._before_mutation("replace", src)
        self.base.replace(src, dst)

    def copy(self, src: str, dst: str) -> None:
        self._before_mutation("copy", src)
        self.base.copy(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else f"{self.mutation_ops} ops"
        return f"<FaultInjectingVFS seed={self.seed} {state}>"


def iter_fault_kinds() -> Iterator[str]:
    """The supported fault kinds (for parametrized tests)."""
    return iter(FAULT_KINDS)
