"""Garbage collection of non-referenced objects (requirement R10).

R10 asks for "garbage collection of non-referenced objects".  The
engine stores plain state dictionaries and does not interpret them, so
reachability is defined by the *caller*: a set of root OIDs plus a
function extracting the outgoing references from one object's state.

:func:`collect_garbage` is a classic stop-the-world mark-and-sweep:

1. **Mark** — breadth-first traversal from the roots through the
   extracted references;
2. **Sweep** — scan every class extent and delete unmarked objects
   (in one engine transaction, so the sweep is atomic and logged).

The HyperModel backend wraps this with its own reference semantics
(children, parts and refTo keep a node alive; the inverse ends do not)
and scrubs dangling inverse entries from survivors afterwards.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Set

from repro.engine.store import ObjectStore

#: Extracts outgoing reference OIDs from (class name, state).
RefExtractor = Callable[[str, Dict], Iterable[int]]


@dataclasses.dataclass
class GcStats:
    """Outcome of one collection."""

    live: int
    collected: int
    roots: int

    @property
    def total(self) -> int:
        """Objects examined."""
        return self.live + self.collected


def mark(
    store: ObjectStore, roots: Iterable[int], extract_refs: RefExtractor
) -> Set[int]:
    """The mark phase: all OIDs reachable from ``roots``.

    Unresolvable references (already-deleted targets) are skipped
    rather than failing the collection.
    """
    marked: Set[int] = set()
    frontier: List[int] = [oid for oid in roots]
    while frontier:
        oid = frontier.pop()
        if oid in marked:
            continue
        if not store.exists(oid):
            continue
        marked.add(oid)
        class_name = store.class_of(oid)
        state = store.get(oid)
        for target in extract_refs(class_name, state):
            if target not in marked:
                frontier.append(target)
    return marked


def collect_garbage(
    store: ObjectStore,
    roots: Iterable[int],
    extract_refs: RefExtractor,
    classes: Iterable[str],
) -> GcStats:
    """Mark from ``roots`` and sweep the extents of ``classes``.

    Args:
        store: the open object store (no transaction may be active).
        roots: OIDs that are live by definition.
        extract_refs: outgoing-reference extractor.
        classes: class names whose extents are swept (subclasses
            included).

    Returns:
        A :class:`GcStats` with live/collected counts.
    """
    root_list = list(roots)
    marked = mark(store, root_list, extract_refs)

    candidates: Set[int] = set()
    for class_name in classes:
        candidates.update(store.scan_class(class_name))

    garbage = sorted(candidates - marked)
    if garbage:
        txn = store.begin()
        try:
            for oid in garbage:
                store.delete(oid, txn=txn)
            txn.commit()
        except Exception:
            txn.abort()
            raise
    return GcStats(
        live=len(candidates) - len(garbage),
        collected=len(garbage),
        roots=len(root_list),
    )
