"""A paged B+tree with duplicate keys and range scans.

The tree indexes signed 64-bit integer keys.  Duplicates are supported
by a composite ordering on ``(key, discriminator)`` where the
discriminator is by convention the value itself (an OID or RID), so
every entry is unique and deletions are exact.

Layout (within 4 KiB pages from the buffer pool):

* **Leaf page** — header ``(type=1, count, next_leaf)`` then ``count``
  entries of ``(key, disc, value)``, each 24 bytes, kept sorted.
  Leaves are chained left-to-right for range scans.
* **Internal page** — header ``(type=2, count, leftmost_child)`` then
  ``count`` separators of ``(key, disc, child)``; ``child`` holds
  entries ``>= (key, disc)`` and ``< `` the next separator.

Inserts split full nodes bottom-up; the root splits into a new root, so
the tree grows at the top.  Deletes are *lazy* (no rebalancing —
matching what several production engines do for secondary indexes);
empty leaves remain until vacuumed, which is harmless for correctness
and for the benchmark's insert-heavy workload.
"""

from __future__ import annotations

import struct
import sys
from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.buffer import BufferPool
from repro.engine.pages import PAGE_SIZE, PageId
from repro.errors import PageError

_LEAF = 1
_INTERNAL = 2

_HEADER = struct.Struct("<BHxQ")  # type, count, pad, next_leaf / leftmost_child
_ENTRY = struct.Struct("<qqq")  # key, disc, value-or-child

_HEADER_SIZE = _HEADER.size  # 12
_ENTRY_SIZE = _ENTRY.size  # 24

#: Maximum entries per node (leaf and internal alike).
ORDER = (PAGE_SIZE - _HEADER_SIZE) // _ENTRY_SIZE

_MIN_I64 = -(1 << 63)
_MAX_I64 = (1 << 63) - 1

#: Whether ``array('q')`` can alias the on-page little-endian entries
#: directly (one C-speed ``frombytes`` per node instead of one struct
#: unpack per entry).  On exotic platforms the struct fallback keeps
#: the format portable.
_ARRAY_FAST_PATH = array("q").itemsize == 8
_BYTESWAP = sys.byteorder != "little"

#: Unpacked nodes cached per tree; cleared wholesale when full.
NODE_CACHE_CAPACITY = 1024


class _NodeView:
    """One unpacked B+tree node, immutable, keyed by ``(pid, lsn)``.

    Entries live in three parallel ``array('q')`` columns so descents
    and range scans run :func:`bisect.bisect_left` over a C-backed
    sequence instead of struct-unpacking entries probe by probe.  The
    view is a snapshot of the page's bytes at frame LSN ``lsn``: any
    mutation dirty-unpins the page, which bumps the frame LSN and makes
    the cached view unreachable.
    """

    __slots__ = ("lsn", "node_type", "count", "link", "keys", "discs", "values")

    def __init__(
        self, lsn: int, node_type: int, count: int, link: int, flat: "array"
    ) -> None:
        self.lsn = lsn
        self.node_type = node_type
        self.count = count
        self.link = link
        self.keys = flat[0::3]
        self.discs = flat[1::3]
        self.values = flat[2::3]


def _unpack_entries(page: bytearray, count: int) -> "array":
    """The node's entry area as one flat little-endian int64 array."""
    flat = array("q")
    if count == 0:
        return flat
    end = _HEADER_SIZE + count * _ENTRY_SIZE
    if _ARRAY_FAST_PATH:
        flat.frombytes(memoryview(page)[_HEADER_SIZE:end])
        if _BYTESWAP:
            flat.byteswap()
    else:  # pragma: no cover - exotic platforms only
        flat.extend(
            struct.unpack_from(f"<{count * 3}q", page, _HEADER_SIZE)
        )
    return flat


def _read_header(page: bytearray) -> Tuple[int, int, int]:
    return _HEADER.unpack_from(page, 0)


def _write_header(page: bytearray, node_type: int, count: int, link: int) -> None:
    _HEADER.pack_into(page, 0, node_type, count, link)


def _read_entry(page: bytearray, index: int) -> Tuple[int, int, int]:
    return _ENTRY.unpack_from(page, _HEADER_SIZE + index * _ENTRY_SIZE)


def _write_entry(page: bytearray, index: int, key: int, disc: int, value: int) -> None:
    _ENTRY.pack_into(page, _HEADER_SIZE + index * _ENTRY_SIZE, key, disc, value)


def _entries(page: bytearray, count: int) -> List[Tuple[int, int, int]]:
    return [_read_entry(page, i) for i in range(count)]


def _set_entries(
    page: bytearray, node_type: int, entries: List[Tuple[int, int, int]], link: int
) -> None:
    _write_header(page, node_type, len(entries), link)
    for i, (key, disc, value) in enumerate(entries):
        _write_entry(page, i, key, disc, value)


def _bisect_left(page: bytearray, count: int, key: int, disc: int) -> int:
    """First index whose (key, disc) >= the probe."""
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        mid_key, mid_disc, _ = _read_entry(page, mid)
        if (mid_key, mid_disc) < (key, disc):
            lo = mid + 1
        else:
            hi = mid
    return lo


class BTree:
    """One B+tree rooted at a page of the shared buffer pool.

    Construct with ``root=0`` to create an empty tree (a fresh leaf is
    allocated); persist :attr:`root` across restarts via the page-file
    root table.
    """

    def __init__(self, pool: BufferPool, root: PageId = 0) -> None:
        self._pool = pool
        #: Shared with the buffer pool: one handle per store.
        self._instr = pool.instrumentation
        #: pid -> _NodeView; validated against the frame LSN on every
        #: access, so stale views (page mutated, or evicted and
        #: reloaded) are replaced, never served.
        self._nodes: Dict[PageId, _NodeView] = {}
        if root == 0:
            root = pool.new_page()
            page = pool.get(root)
            try:
                _write_header(page, _LEAF, 0, 0)
            finally:
                pool.unpin(root, dirty=True)
        self.root = root

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _node(self, pid: PageId) -> _NodeView:
        """The unpacked view of node ``pid``, via the per-tree cache.

        Pins the page just long enough to validate (or rebuild) the
        cached view against the frame's content LSN.
        """
        page = self._pool.get(pid)
        try:
            lsn = self._pool.frame_lsn(pid)
            node = self._nodes.get(pid)
            if node is not None and node.lsn == lsn:
                self._instr.count("engine.btree.node_cache.hits")
                return node
            self._instr.count("engine.btree.node_cache.misses")
            node_type, count, link = _read_header(page)
            node = _NodeView(
                lsn, node_type, count, link, _unpack_entries(page, count)
            )
        finally:
            self._pool.unpin(pid)
        if len(self._nodes) >= NODE_CACHE_CAPACITY:
            self._nodes.clear()
            self._instr.count("engine.btree.node_cache.clears")
        self._nodes[pid] = node
        return node

    @staticmethod
    def _bisect_node(node: _NodeView, key: int, disc: int) -> int:
        """First index in ``node`` whose (key, disc) >= the probe."""
        lo = bisect_left(node.keys, key)
        if lo == node.count or node.keys[lo] != key:
            return lo
        hi = bisect_right(node.keys, key, lo)
        return bisect_left(node.discs, disc, lo, hi)

    def _find_leaf(self, key: int, disc: int) -> PageId:
        pid = self.root
        while True:
            node = self._node(pid)
            if node.node_type == _LEAF:
                return pid
            if node.node_type != _INTERNAL:
                raise PageError(f"page {pid}: not a btree node")
            index = self._bisect_node(node, key, disc)
            # Separator i is the smallest entry of child i; an exact
            # match therefore descends into that child.
            if (
                index < node.count
                and node.keys[index] == key
                and node.discs[index] == disc
            ):
                pid = node.values[index]
            else:
                pid = node.link if index == 0 else node.values[index - 1]

    def search(self, key: int) -> List[int]:
        """All values stored under ``key``, in discriminator order."""
        out: List[int] = []
        pid = self._find_leaf(key, _MIN_I64)
        while pid:
            node = self._node(pid)
            start = bisect_left(node.keys, key)
            end = bisect_right(node.keys, key, start)
            out.extend(node.values[start:end])
            if end < node.count:
                break
            pid = node.link  # duplicates (or empty leaves) may continue
        return out

    def search_unique(self, key: int) -> Optional[int]:
        """The single value under ``key``, or None.

        Intended for unique indexes (directory, uniqueId); returns the
        first entry if duplicates exist.
        """
        pid = self._find_leaf(key, _MIN_I64)
        while pid:
            node = self._node(pid)
            index = bisect_left(node.keys, key)
            if index < node.count:
                return node.values[index] if node.keys[index] == key else None
            pid = node.link  # lazy deletes can leave empty leaves
        return None

    def contains(self, key: int, value: int, disc: Optional[int] = None) -> bool:
        """Whether the exact (key, disc) entry exists."""
        disc = value if disc is None else disc
        pid = self._find_leaf(key, disc)
        node = self._node(pid)
        index = self._bisect_node(node, key, disc)
        return (
            index < node.count
            and node.keys[index] == key
            and node.discs[index] == disc
        )

    def scan_range(self, low: int, high: int) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) for all entries with low <= key <= high."""
        pid = self._find_leaf(low, _MIN_I64)
        while pid:
            node = self._node(pid)
            start = bisect_left(node.keys, low)
            end = bisect_right(node.keys, high, start)
            yield from zip(node.keys[start:end], node.values[start:end])
            if end < node.count:
                return  # a key above ``high`` exists: the scan is done
            pid = node.link

    def scan_all(self) -> Iterator[Tuple[int, int]]:
        """Yield every (key, value) in key order."""
        return self.scan_range(_MIN_I64, _MAX_I64)

    def __len__(self) -> int:
        """Total entries (walks the leaf chain)."""
        return sum(1 for _ in self.scan_all())

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: int, value: int, disc: Optional[int] = None) -> None:
        """Insert an entry.  ``disc`` defaults to ``value``.

        Raises:
            PageError: if the exact (key, disc) pair already exists.
        """
        disc = value if disc is None else disc
        split = self._insert_into(self.root, key, disc, value)
        if split is not None:
            self._instr.count("engine.btree.root_splits")
            sep_key, sep_disc, new_child = split
            new_root = self._pool.new_page()
            page = self._pool.get(new_root)
            try:
                _write_header(page, _INTERNAL, 1, self.root)
                _write_entry(page, 0, sep_key, sep_disc, new_child)
            finally:
                self._pool.unpin(new_root, dirty=True)
            self.root = new_root

    def _insert_into(
        self, pid: PageId, key: int, disc: int, value: int
    ) -> Optional[Tuple[int, int, PageId]]:
        """Recursive insert; returns a (key, disc, right-page) split or None."""
        page = self._pool.get(pid)
        node_type, count, link = _read_header(page)
        if node_type == _LEAF:
            try:
                return self._insert_into_leaf(page, count, link, key, disc, value)
            finally:
                self._pool.unpin(pid, dirty=True)
        try:
            index = _bisect_left(page, count, key, disc)
            if index < count and _read_entry(page, index)[:2] == (key, disc):
                child = _read_entry(page, index)[2]
            else:
                child = link if index == 0 else _read_entry(page, index - 1)[2]
        finally:
            self._pool.unpin(pid)

        split = self._insert_into(child, key, disc, value)
        if split is None:
            return None
        sep_key, sep_disc, new_child = split

        page = self._pool.get(pid)
        try:
            node_type, count, link = _read_header(page)
            entries = _entries(page, count)
            index = _bisect_left(page, count, sep_key, sep_disc)
            entries.insert(index, (sep_key, sep_disc, new_child))
            if len(entries) <= ORDER:
                _set_entries(page, _INTERNAL, entries, link)
                return None
            # Split the internal node: the middle separator moves up.
            self._instr.count("engine.btree.splits")
            mid = len(entries) // 2
            up_key, up_disc, up_child = entries[mid]
            left_entries = entries[:mid]
            right_entries = entries[mid + 1 :]
            right_pid = self._pool.new_page()
            right_page = self._pool.get(right_pid)
            try:
                _set_entries(right_page, _INTERNAL, right_entries, up_child)
            finally:
                self._pool.unpin(right_pid, dirty=True)
            _set_entries(page, _INTERNAL, left_entries, link)
            return up_key, up_disc, right_pid
        finally:
            self._pool.unpin(pid, dirty=True)

    def _insert_into_leaf(
        self,
        page: bytearray,
        count: int,
        next_leaf: int,
        key: int,
        disc: int,
        value: int,
    ) -> Optional[Tuple[int, int, PageId]]:
        index = _bisect_left(page, count, key, disc)
        if index < count and _read_entry(page, index)[:2] == (key, disc):
            raise PageError(f"duplicate btree entry ({key}, {disc})")
        entries = _entries(page, count)
        entries.insert(index, (key, disc, value))
        if len(entries) <= ORDER:
            _set_entries(page, _LEAF, entries, next_leaf)
            return None
        self._instr.count("engine.btree.splits")
        mid = len(entries) // 2
        left_entries, right_entries = entries[:mid], entries[mid:]
        right_pid = self._pool.new_page()
        right_page = self._pool.get(right_pid)
        try:
            _set_entries(right_page, _LEAF, right_entries, next_leaf)
        finally:
            self._pool.unpin(right_pid, dirty=True)
        _set_entries(page, _LEAF, left_entries, right_pid)
        sep_key, sep_disc, _ = right_entries[0]
        return sep_key, sep_disc, right_pid

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    def bulk_load(self, entries: List[Tuple[int, int, int]]) -> None:
        """Build the tree bottom-up from sorted (key, disc, value) rows.

        Only valid on an empty tree.  Leaves are packed to ~90% fill
        (leaving insert headroom), chained left-to-right, and internal
        levels are built over them — O(n) instead of n inserts, which
        is what makes back-filling an index over a large extent cheap.

        Raises:
            PageError: if the tree is not empty or the input is not
                strictly sorted by (key, disc).
        """
        page = self._pool.get(self.root)
        try:
            node_type, count, _link = _read_header(page)
        finally:
            self._pool.unpin(self.root)
        if node_type != _LEAF or count != 0:
            raise PageError("bulk_load requires an empty tree")
        if not entries:
            return
        for previous, current in zip(entries, entries[1:]):
            if previous[:2] >= current[:2]:
                raise PageError("bulk_load input must be strictly sorted")

        fill = max(1, (ORDER * 9) // 10)
        # Build the leaf level, reusing the existing root as first leaf.
        leaf_pids: List[PageId] = []
        leaf_firsts: List[Tuple[int, int]] = []
        for start in range(0, len(entries), fill):
            chunk = entries[start : start + fill]
            pid = self.root if not leaf_pids else self._pool.new_page()
            page = self._pool.get(pid)
            try:
                _set_entries(page, _LEAF, chunk, 0)
            finally:
                self._pool.unpin(pid, dirty=True)
            leaf_pids.append(pid)
            leaf_firsts.append(chunk[0][:2])
        for left, right in zip(leaf_pids, leaf_pids[1:]):
            page = self._pool.get(left)
            try:
                _type, count, _old = _read_header(page)
                _write_header(page, _LEAF, count, right)
            finally:
                self._pool.unpin(left, dirty=True)

        # Build internal levels until one node remains.
        child_pids, child_firsts = leaf_pids, leaf_firsts
        while len(child_pids) > 1:
            parent_pids: List[PageId] = []
            parent_firsts: List[Tuple[int, int]] = []
            for start in range(0, len(child_pids), fill + 1):
                group = child_pids[start : start + fill + 1]
                firsts = child_firsts[start : start + fill + 1]
                if len(group) == 1:
                    # A parent with zero separators is invalid; let the
                    # lone child represent the group at this level.
                    parent_pids.append(group[0])
                    parent_firsts.append(firsts[0])
                    continue
                pid = self._pool.new_page()
                page = self._pool.get(pid)
                try:
                    separators = [
                        (key, disc, child)
                        for (key, disc), child in zip(firsts[1:], group[1:])
                    ]
                    _set_entries(page, _INTERNAL, separators, group[0])
                finally:
                    self._pool.unpin(pid, dirty=True)
                parent_pids.append(pid)
                parent_firsts.append(firsts[0])
            child_pids, child_firsts = parent_pids, parent_firsts
        self.root = child_pids[0]

    # ------------------------------------------------------------------
    # Update and delete
    # ------------------------------------------------------------------

    def update_value(self, key: int, disc: int, new_value: int) -> bool:
        """Replace the value of an exact (key, disc) entry in place.

        Returns False if no such entry exists.  Used by the object
        directory when a record relocates to a new RID.
        """
        pid = self._find_leaf(key, disc)
        page = self._pool.get(pid)
        found = False
        try:
            _type, count, _link = _read_header(page)
            index = _bisect_left(page, count, key, disc)
            if index < count and _read_entry(page, index)[:2] == (key, disc):
                _write_entry(page, index, key, disc, new_value)
                found = True
        finally:
            self._pool.unpin(pid, dirty=found)
        return found

    def delete(self, key: int, value: int, disc: Optional[int] = None) -> bool:
        """Remove the exact (key, disc) entry; returns False if absent.

        Deletion is lazy: leaves may become empty but are kept in the
        chain, and separators above are left untouched (they remain
        valid upper/lower bounds).
        """
        disc = value if disc is None else disc
        pid = self._find_leaf(key, disc)
        page = self._pool.get(pid)
        removed = False
        try:
            _type, count, next_leaf = _read_header(page)
            index = _bisect_left(page, count, key, disc)
            if index < count and _read_entry(page, index)[:2] == (key, disc):
                entries = _entries(page, count)
                del entries[index]
                _set_entries(page, _LEAF, entries, next_leaf)
                removed = True
        finally:
            self._pool.unpin(pid, dirty=removed)
        return removed

    # ------------------------------------------------------------------
    # Invariant checking (used by property-based tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, fill and chain invariants of the whole tree.

        Raises ``AssertionError`` on the first violation.  Exposed for
        tests; not called on any hot path.
        """
        leaves: List[PageId] = []
        self._check_node(self.root, _MIN_I64, _MIN_I64, _MAX_I64, _MAX_I64, leaves)
        # Leaf chain must visit the same leaves left-to-right.
        if leaves:
            chained = []
            pid = leaves[0]
            while pid:
                chained.append(pid)
                page = self._pool.get(pid)
                try:
                    _type, _count, next_leaf = _read_header(page)
                finally:
                    self._pool.unpin(pid)
                pid = next_leaf
            assert chained[: len(leaves)] == leaves, "leaf chain out of order"

    def _check_node(
        self,
        pid: PageId,
        low_key: int,
        low_disc: int,
        high_key: int,
        high_disc: int,
        leaves: List[PageId],
    ) -> None:
        page = self._pool.get(pid)
        try:
            node_type, count, link = _read_header(page)
            entries = _entries(page, count)
        finally:
            self._pool.unpin(pid)
        previous = (low_key, low_disc)
        for key, disc, _value in entries:
            assert previous <= (key, disc), f"page {pid}: entries out of order"
            assert (key, disc) < (high_key, high_disc) or (
                high_key,
                high_disc,
            ) == (_MAX_I64, _MAX_I64), f"page {pid}: entry above separator"
            previous = (key, disc)
        if node_type == _LEAF:
            leaves.append(pid)
            return
        assert count >= 1, f"internal page {pid} has no separators"
        bounds = [(low_key, low_disc)] + [(k, d) for k, d, _ in entries]
        bounds.append((high_key, high_disc))
        children = [link] + [c for _k, _d, c in entries]
        for i, child in enumerate(children):
            lo_k, lo_d = bounds[i]
            hi_k, hi_d = bounds[i + 1]
            self._check_node(child, lo_k, lo_d, hi_k, hi_d, leaves)
