"""The slotted-page record layout used by heap pages.

Layout of a slotted page::

    +--------------------------------------------------------------+
    | header | record cells grow ->        ...     <- slot dir     |
    +--------------------------------------------------------------+

* The **header** (16 bytes) holds the slot count, the offset of the end
  of the record area (records are appended at the front), the heap
  layer's next-page chain link, and two maintenance hints: the total
  bytes of live records (so ``can_insert`` never sums the directory)
  and the index of the first slot that *may* be a tombstone (so
  ``insert`` never scans live slots looking for one to reuse).
* The **slot directory** grows backward from the end of the page; each
  4-byte slot holds the record's offset and length.  A deleted slot is
  a tombstone (offset ``0xFFFF``) so slot numbers stay stable — record
  ids embed the slot number, and other pages may reference it.
* :func:`compact` rewrites the record area to squeeze out holes left by
  deletes and shrinking updates, preserving slot numbers.

All functions operate in place on a ``bytearray`` page buffer supplied
by the buffer pool.  Read paths are **zero-copy**: :func:`read` and
:func:`records` return ``memoryview`` slices into the page buffer, not
``bytes`` copies.  Callers must treat the views as read-only and must
not hold one across a mutation of the same page (insert/update/delete/
compact may move the underlying bytes); copy with ``bytes(view)`` — or
:func:`read_into` — when the record outlives the pin.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.engine.pages import PAGE_SIZE
from repro.errors import PageError

# slot_count, record_end, next-page link (heap's word), live_bytes,
# free_slot_hint, reserved.
_HEADER = struct.Struct("<HHIHHI")
_COUNT_END = struct.Struct("<HH")  # the slot_count/record_end prefix
_HINTS = struct.Struct("<HH")  # live_bytes, free_slot_hint
_HINTS_OFFSET = 8  # after count (H) + end (H) + heap next link (I)
_SLOT = struct.Struct("<HH")  # offset, length

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size

#: Offset marking a deleted (tombstoned) slot.
TOMBSTONE = 0xFFFF

#: ``free_slot_hint`` value meaning "no tombstoned slot on this page".
NO_FREE_SLOT = 0xFFFF

#: Largest record a single page can hold (one slot, empty page).
MAX_RECORD_SIZE = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE


def init_page(page: bytearray) -> None:
    """Format a zeroed buffer as an empty slotted page."""
    _HEADER.pack_into(page, 0, 0, HEADER_SIZE, 0, 0, NO_FREE_SLOT, 0)


def slot_count(page: bytearray) -> int:
    """Number of slots in the directory (including tombstones)."""
    (count,) = struct.unpack_from("<H", page, 0)
    return count


def _record_end(page: bytearray) -> int:
    (end,) = struct.unpack_from("<H", page, 2)
    return end


def _set_header(page: bytearray, count: int, end: int) -> None:
    # Only the mutable prefix: the next-link word belongs to the heap
    # layer (it chains pages) and must survive record operations.
    _COUNT_END.pack_into(page, 0, count, end)


def _hints(page: bytearray) -> Tuple[int, int]:
    """The maintenance hints: (live record bytes, first-tombstone hint).

    The hint is a conservative *lower bound*: every slot below it is
    live, but the slot it names may or may not still be a tombstone.
    ``NO_FREE_SLOT`` asserts the page has no tombstones at all.
    """
    return _HINTS.unpack_from(page, _HINTS_OFFSET)


def _set_hints(page: bytearray, live_bytes: int, free_hint: int) -> None:
    _HINTS.pack_into(page, _HINTS_OFFSET, live_bytes, free_hint)


def _slot_pos(index: int) -> int:
    return PAGE_SIZE - SLOT_SIZE * (index + 1)


def _read_slot(page: bytearray, index: int) -> Tuple[int, int]:
    return _SLOT.unpack_from(page, _slot_pos(index))


def _write_slot(page: bytearray, index: int, offset: int, length: int) -> None:
    _SLOT.pack_into(page, _slot_pos(index), offset, length)


def free_space(page: bytearray) -> int:
    """Bytes available for a new record *including* its new slot."""
    count = slot_count(page)
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    gap = directory_start - _record_end(page)
    return max(gap - SLOT_SIZE, 0)


def can_insert(page: bytearray, length: int) -> bool:
    """Whether a record of ``length`` bytes fits (maybe after compaction)."""
    if length > MAX_RECORD_SIZE:
        return False
    if free_space(page) >= length:
        return True
    return _reclaimable_space(page) >= length


def _reclaimable_space(page: bytearray) -> int:
    """Free space obtainable by compacting the record area.

    O(1): the live-byte total is maintained in the header instead of
    being re-summed over the whole slot directory on every call.
    """
    count = slot_count(page)
    live, _hint = _hints(page)
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    gap = directory_start - HEADER_SIZE - live
    return max(gap - SLOT_SIZE, 0)


def _find_free_slot(page: bytearray, count: int) -> Optional[int]:
    """First tombstoned slot, or None — amortized O(1) via the hint.

    Scanning starts at the header hint; every live slot the scan steps
    over permanently advances the lower bound, so repeated inserts never
    rescan the same live prefix.
    """
    live, hint = _hints(page)
    if hint == NO_FREE_SLOT:
        return None
    for index in range(hint, count):
        offset, _len = _read_slot(page, index)
        if offset == TOMBSTONE:
            if index != hint:
                _set_hints(page, live, index)
            return index
    _set_hints(page, live, NO_FREE_SLOT)
    return None


def insert(page: bytearray, data: bytes) -> int:
    """Insert a record, returning its slot number.

    Reuses a tombstoned slot if one exists (found via the header's
    free-slot hint, not a directory scan), compacts if fragmentation
    blocks an otherwise-fitting record, and raises
    :class:`~repro.errors.PageError` if the record cannot fit.
    """
    length = len(data)
    if length > MAX_RECORD_SIZE:
        raise PageError(f"record of {length} bytes exceeds page capacity")
    count = slot_count(page)
    reuse = _find_free_slot(page, count)

    needed = length if reuse is not None else length + SLOT_SIZE
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    if directory_start - _record_end(page) < needed:
        compact(page)
        directory_start = PAGE_SIZE - SLOT_SIZE * count
        if directory_start - _record_end(page) < needed:
            raise PageError("page full")

    live, hint = _hints(page)
    offset = _record_end(page)
    page[offset : offset + length] = data
    if reuse is not None:
        _write_slot(page, reuse, offset, length)
        _set_header(page, count, offset + length)
        # The reused slot is live again; the next tombstone (if any)
        # can only be past it.
        _set_hints(page, live + length, reuse + 1 if reuse + 1 < count else NO_FREE_SLOT)
        return reuse
    _write_slot(page, count, offset, length)
    _set_header(page, count + 1, offset + length)
    _set_hints(page, live + length, hint)
    return count


def read(page: bytearray, slot: int) -> memoryview:
    """Return the record stored in ``slot`` as a zero-copy view.

    The view aliases the page buffer: treat it as read-only and copy it
    (``bytes(view)``) before mutating the page or releasing the pin
    beyond the current operation.

    Raises:
        PageError: if the slot is out of range or tombstoned.
    """
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} is deleted")
    return memoryview(page)[offset : offset + length]


def read_into(page: bytearray, slot: int, out: bytearray) -> int:
    """Append the record stored in ``slot`` to ``out``; returns its length.

    The owned-copy companion of :func:`read` for callers that need the
    record to survive page mutation.

    Raises:
        PageError: if the slot is out of range or tombstoned.
    """
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} is deleted")
    out += memoryview(page)[offset : offset + length]
    return length


def delete(page: bytearray, slot: int) -> None:
    """Tombstone a slot; its space is reclaimed on the next compaction."""
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} already deleted")
    _write_slot(page, slot, TOMBSTONE, 0)
    live, hint = _hints(page)
    _set_hints(page, live - length, min(hint, slot))


def update(page: bytearray, slot: int, data: bytes) -> bool:
    """Replace the record in ``slot``; returns False if it cannot fit.

    Shrinking or equal-size updates are done in place.  Growing updates
    try the free area (compacting if needed); if the page genuinely has
    no room the function returns ``False`` and the caller must relocate
    the record to another page.
    """
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} is deleted")
    new_length = len(data)
    if new_length <= length:
        page[offset : offset + new_length] = data
        _write_slot(page, slot, offset, new_length)
        live, hint = _hints(page)
        _set_hints(page, live - length + new_length, hint)
        return True

    # Grow: tombstone, then try to place the new copy.
    _write_slot(page, slot, TOMBSTONE, 0)
    live, hint = _hints(page)
    _set_hints(page, live - length, min(hint, slot))
    count = slot_count(page)
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    if directory_start - _record_end(page) < new_length:
        compact(page)
        directory_start = PAGE_SIZE - SLOT_SIZE * count
    if directory_start - _record_end(page) < new_length:
        # Restore the old record so the caller can still read it.
        _write_slot(page, slot, offset, length)
        live, hint = _hints(page)
        _set_hints(page, live + length, hint)
        return False
    new_offset = _record_end(page)
    page[new_offset : new_offset + new_length] = data
    _write_slot(page, slot, new_offset, new_length)
    _set_header(page, count, new_offset + new_length)
    live, hint = _hints(page)
    _set_hints(page, live + new_length, hint)
    return True


def compact(page: bytearray) -> None:
    """Rewrite the record area contiguously, keeping slot numbers.

    Also recomputes the header hints exactly (live bytes and the index
    of the first surviving tombstone).
    """
    count = slot_count(page)
    live: List[Tuple[int, bytes]] = []
    first_tombstone = NO_FREE_SLOT
    for index in range(count):
        offset, length = _read_slot(page, index)
        if offset != TOMBSTONE:
            live.append((index, bytes(page[offset : offset + length])))
        elif first_tombstone == NO_FREE_SLOT:
            first_tombstone = index
    cursor = HEADER_SIZE
    for index, data in live:
        page[cursor : cursor + len(data)] = data
        _write_slot(page, index, cursor, len(data))
        cursor += len(data)
    _set_header(page, count, cursor)
    _set_hints(page, cursor - HEADER_SIZE, first_tombstone)


def records(page: bytearray) -> Iterator[Tuple[int, memoryview]]:
    """Iterate (slot, record-view) pairs, skipping tombstones.

    Views alias the page buffer (see :func:`read`); copy any record
    that must outlive the iteration or a subsequent page mutation.
    """
    return records_view(page)


def records_view(page: bytearray) -> Iterator[Tuple[int, memoryview]]:
    """Zero-copy iterator over (slot, ``memoryview``) pairs."""
    view = memoryview(page)
    for index in range(slot_count(page)):
        offset, length = _read_slot(page, index)
        if offset != TOMBSTONE:
            yield index, view[offset : offset + length]


def live_count(page: bytearray) -> int:
    """Number of non-tombstoned records on the page."""
    return sum(1 for _ in records(page))
