"""The slotted-page record layout used by heap pages.

Layout of a slotted page::

    +--------------------------------------------------------------+
    | header | record cells grow ->        ...     <- slot dir     |
    +--------------------------------------------------------------+

* The **header** (8 bytes) holds the slot count and the offset of the
  end of the record area (records are appended at the front).
* The **slot directory** grows backward from the end of the page; each
  4-byte slot holds the record's offset and length.  A deleted slot is
  a tombstone (offset ``0xFFFF``) so slot numbers stay stable — record
  ids embed the slot number, and other pages may reference it.
* :func:`compact` rewrites the record area to squeeze out holes left by
  deletes and shrinking updates, preserving slot numbers.

All functions operate in place on a ``bytearray`` page buffer supplied
by the buffer pool.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.engine.pages import PAGE_SIZE
from repro.errors import PageError

_HEADER = struct.Struct("<HHI")  # slot_count, record_end, reserved
_COUNT_END = struct.Struct("<HH")  # the mutable prefix of the header
_SLOT = struct.Struct("<HH")  # offset, length

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size

#: Offset marking a deleted (tombstoned) slot.
TOMBSTONE = 0xFFFF

#: Largest record a single page can hold (one slot, empty page).
MAX_RECORD_SIZE = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE


def init_page(page: bytearray) -> None:
    """Format a zeroed buffer as an empty slotted page."""
    _HEADER.pack_into(page, 0, 0, HEADER_SIZE, 0)


def slot_count(page: bytearray) -> int:
    """Number of slots in the directory (including tombstones)."""
    count, _end, _ = _HEADER.unpack_from(page, 0)
    return count


def _record_end(page: bytearray) -> int:
    _count, end, _ = _HEADER.unpack_from(page, 0)
    return end


def _set_header(page: bytearray, count: int, end: int) -> None:
    # Only the mutable prefix: the reserved word belongs to the heap
    # layer (it chains pages) and must survive record operations.
    _COUNT_END.pack_into(page, 0, count, end)


def _slot_pos(index: int) -> int:
    return PAGE_SIZE - SLOT_SIZE * (index + 1)


def _read_slot(page: bytearray, index: int) -> Tuple[int, int]:
    return _SLOT.unpack_from(page, _slot_pos(index))


def _write_slot(page: bytearray, index: int, offset: int, length: int) -> None:
    _SLOT.pack_into(page, _slot_pos(index), offset, length)


def free_space(page: bytearray) -> int:
    """Bytes available for a new record *including* its new slot."""
    count = slot_count(page)
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    gap = directory_start - _record_end(page)
    return max(gap - SLOT_SIZE, 0)


def can_insert(page: bytearray, length: int) -> bool:
    """Whether a record of ``length`` bytes fits (maybe after compaction)."""
    if length > MAX_RECORD_SIZE:
        return False
    if free_space(page) >= length:
        return True
    return _reclaimable_space(page) >= length


def _reclaimable_space(page: bytearray) -> int:
    """Free space obtainable by compacting the record area."""
    count = slot_count(page)
    live = sum(
        length
        for offset, length in (_read_slot(page, i) for i in range(count))
        if offset != TOMBSTONE
    )
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    gap = directory_start - HEADER_SIZE - live
    return max(gap - SLOT_SIZE, 0)


def insert(page: bytearray, data: bytes) -> int:
    """Insert a record, returning its slot number.

    Reuses a tombstoned slot if one exists, compacts if fragmentation
    blocks an otherwise-fitting record, and raises
    :class:`~repro.errors.PageError` if the record cannot fit.
    """
    length = len(data)
    if length > MAX_RECORD_SIZE:
        raise PageError(f"record of {length} bytes exceeds page capacity")
    count = slot_count(page)
    reuse: Optional[int] = None
    for index in range(count):
        offset, _len = _read_slot(page, index)
        if offset == TOMBSTONE:
            reuse = index
            break

    needed = length if reuse is not None else length + SLOT_SIZE
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    if directory_start - _record_end(page) < needed:
        compact(page)
        directory_start = PAGE_SIZE - SLOT_SIZE * count
        if directory_start - _record_end(page) < needed:
            raise PageError("page full")

    offset = _record_end(page)
    page[offset : offset + length] = data
    if reuse is not None:
        _write_slot(page, reuse, offset, length)
        _set_header(page, count, offset + length)
        return reuse
    _write_slot(page, count, offset, length)
    _set_header(page, count + 1, offset + length)
    return count


def read(page: bytearray, slot: int) -> bytes:
    """Return the record stored in ``slot``.

    Raises:
        PageError: if the slot is out of range or tombstoned.
    """
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} is deleted")
    return bytes(page[offset : offset + length])


def delete(page: bytearray, slot: int) -> None:
    """Tombstone a slot; its space is reclaimed on the next compaction."""
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, _length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} already deleted")
    _write_slot(page, slot, TOMBSTONE, 0)


def update(page: bytearray, slot: int, data: bytes) -> bool:
    """Replace the record in ``slot``; returns False if it cannot fit.

    Shrinking or equal-size updates are done in place.  Growing updates
    try the free area (compacting if needed); if the page genuinely has
    no room the function returns ``False`` and the caller must relocate
    the record to another page.
    """
    if not 0 <= slot < slot_count(page):
        raise PageError(f"slot {slot} out of range")
    offset, length = _read_slot(page, slot)
    if offset == TOMBSTONE:
        raise PageError(f"slot {slot} is deleted")
    new_length = len(data)
    if new_length <= length:
        page[offset : offset + new_length] = data
        _write_slot(page, slot, offset, new_length)
        return True

    # Grow: tombstone, then try to place the new copy.
    _write_slot(page, slot, TOMBSTONE, 0)
    count = slot_count(page)
    directory_start = PAGE_SIZE - SLOT_SIZE * count
    if directory_start - _record_end(page) < new_length:
        compact(page)
        directory_start = PAGE_SIZE - SLOT_SIZE * count
    if directory_start - _record_end(page) < new_length:
        # Restore the old record so the caller can still read it.
        _write_slot(page, slot, offset, length)
        return False
    new_offset = _record_end(page)
    page[new_offset : new_offset + new_length] = data
    _write_slot(page, slot, new_offset, new_length)
    _set_header(page, count, new_offset + new_length)
    return True


def compact(page: bytearray) -> None:
    """Rewrite the record area contiguously, keeping slot numbers."""
    count = slot_count(page)
    live: List[Tuple[int, bytes]] = []
    for index in range(count):
        offset, length = _read_slot(page, index)
        if offset != TOMBSTONE:
            live.append((index, bytes(page[offset : offset + length])))
    cursor = HEADER_SIZE
    for index, data in live:
        page[cursor : cursor + len(data)] = data
        _write_slot(page, index, cursor, len(data))
        cursor += len(data)
    _set_header(page, count, cursor)


def records(page: bytearray) -> Iterator[Tuple[int, bytes]]:
    """Iterate (slot, record) pairs, skipping tombstones."""
    for index in range(slot_count(page)):
        offset, length = _read_slot(page, index)
        if offset != TOMBSTONE:
            yield index, bytes(page[offset : offset + length])


def live_count(page: bytearray) -> int:
    """Number of non-tombstoned records on the page."""
    return sum(1 for _ in records(page))
