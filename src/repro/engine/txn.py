"""Transactions over the object store: deferred write sets + 2PL.

A :class:`Transaction` buffers all of its writes in memory (deferred
update).  Reads consult the write set first, then the committed store.
Commit hands the write set to the store, which logs it to the WAL and
applies it to pages; abort simply discards the buffer.  Locks (if the
store runs in locking mode) follow strict two-phase locking and are
released when the transaction ends.

The store also supports an autocommit mode where every mutating call
runs in its own implicit transaction — that is what the benchmark
backends use between explicit commits.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Set

from repro.errors import TransactionError

#: Sentinel distinguishing "buffered delete" from "not buffered".
DELETED = object()


class TxnStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work against an :class:`~repro.engine.store.ObjectStore`.

    Obtained from ``store.begin()``; usable as a context manager that
    commits on success and aborts on exception::

        with store.begin() as txn:
            oid = store.new("Node", {...}, txn=txn)
    """

    def __init__(self, txid: int) -> None:
        self.txid = txid
        self.status = TxnStatus.ACTIVE
        #: oid -> new state dict, or DELETED
        self.write_set: Dict[int, Any] = {}
        #: oids created by this transaction (subset of write_set keys)
        self.created: Set[int] = set()
        #: oids read (for optimistic validation by the concurrency layer)
        self.read_set: Set[int] = set()
        #: oid -> class name, for objects created by this transaction
        self.new_classes: Dict[int, str] = {}
        #: oid -> OID to cluster near, applied at commit time
        self.place_near: Dict[int, int] = {}
        self._store = None  # set by the store at begin()

    # ------------------------------------------------------------------
    # Write-set bookkeeping (called by the store)
    # ------------------------------------------------------------------

    def require_active(self) -> None:
        """Raise unless the transaction can still be used."""
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txid} is {self.status.value}"
            )

    def buffer_put(self, oid: int, state: dict, created: bool = False) -> None:
        """Record a pending insert/update."""
        self.require_active()
        self.write_set[oid] = state
        if created:
            self.created.add(oid)

    def buffer_delete(self, oid: int) -> None:
        """Record a pending delete."""
        self.require_active()
        self.write_set[oid] = DELETED
        self.created.discard(oid)

    def buffered(self, oid: int) -> Optional[Any]:
        """The buffered state of ``oid``: a dict, DELETED, or None."""
        return self.write_set.get(oid)

    def note_read(self, oid: int) -> None:
        """Track a read for optimistic validation."""
        self.read_set.add(oid)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Commit through the owning store."""
        self.require_active()
        if self._store is None:
            raise TransactionError("transaction is not bound to a store")
        self._store._commit_txn(self)

    def abort(self) -> None:
        """Abort: discard the write set and release locks."""
        if self.status is not TxnStatus.ACTIVE:
            return
        if self._store is None:
            raise TransactionError("transaction is not bound to a store")
        self._store._abort_txn(self)

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self.status is TxnStatus.ACTIVE:
            self.commit()
        elif self.status is TxnStatus.ACTIVE:
            self.abort()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transaction {self.txid} {self.status.value} "
            f"writes={len(self.write_set)}>"
        )
