"""The persistent class catalog with dynamic schema evolution (R4).

The catalog maps class names to class ids, field definitions (with
defaults) and base classes.  It is stored as one serialized record in a
dedicated heap whose RID is a named root of the page file, so it
survives restarts and is loaded with a single record read.

Schema evolution is *lazy*: adding a field to a class bumps the class's
schema version and records the field's default; objects written under
an older version are upgraded on read by filling in defaults.  Nothing
is rewritten eagerly — exactly how engines avoid O(extent) schema
changes, and what makes the paper's "add a DrawNode type / add an
attribute" extension cheap to measure.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.engine.heap import HeapFile
from repro.engine import serializer
from repro.errors import SchemaError


@dataclasses.dataclass
class FieldDefinition:
    """One field of a class: name plus the default for lazy upgrade.

    ``since_version`` is the class schema version that introduced the
    field; objects stored with an older version get ``default`` on
    read.
    """

    name: str
    default: Any = None
    since_version: int = 1

    def to_dict(self) -> dict:
        """Serializable form."""
        return {
            "name": self.name,
            "default": self.default,
            "since": self.since_version,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FieldDefinition":
        """Rebuild from :meth:`to_dict` output."""
        return cls(raw["name"], raw["default"], raw["since"])


@dataclasses.dataclass
class ClassDefinition:
    """One class: id, name, optional base, fields and schema version."""

    class_id: int
    name: str
    base: Optional[str]
    fields: List[FieldDefinition]
    version: int = 1

    def field_names(self) -> List[str]:
        """Names of the class's own (non-inherited) fields."""
        return [f.name for f in self.fields]

    def to_dict(self) -> dict:
        """Serializable form."""
        return {
            "id": self.class_id,
            "name": self.name,
            "base": self.base,
            "fields": [f.to_dict() for f in self.fields],
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ClassDefinition":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            raw["id"],
            raw["name"],
            raw["base"],
            [FieldDefinition.from_dict(f) for f in raw["fields"]],
            raw["version"],
        )


class Catalog:
    """The schema catalog of one object store."""

    _ROOT = "catalog.rid"

    def __init__(self, heap: HeapFile) -> None:
        self._heap = heap
        self._file = heap._pool._file
        self._classes: Dict[str, ClassDefinition] = {}
        self._by_id: Dict[int, ClassDefinition] = {}
        self._next_class_id = 1
        rid = self._file.get_root(self._ROOT, 0)
        if rid:
            self._rid: Optional[int] = rid
            self._load(rid)
        else:
            self._rid = None
            self.save()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _load(self, rid: int) -> None:
        raw = serializer.decode(self._heap.read(rid))
        self._next_class_id = raw["next_id"]
        for entry in raw["classes"]:
            definition = ClassDefinition.from_dict(entry)
            self._classes[definition.name] = definition
            self._by_id[definition.class_id] = definition

    def save(self) -> None:
        """Write the catalog record and update its root pointer."""
        payload = serializer.encode(
            {
                "next_id": self._next_class_id,
                "classes": [c.to_dict() for c in self._classes.values()],
            }
        )
        if self._rid is None:
            self._rid = self._heap.insert(payload)
        else:
            self._rid = self._heap.update(self._rid, payload)
        self._file.set_root(self._ROOT, self._rid)

    # ------------------------------------------------------------------
    # Class management
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        fields: List[FieldDefinition],
        base: Optional[str] = None,
    ) -> ClassDefinition:
        """Register a new class; returns its definition.

        Raises:
            SchemaError: on duplicate names, unknown bases, or field
                name collisions with inherited fields.
        """
        if name in self._classes:
            raise SchemaError(f"class {name!r} already defined")
        if base is not None and base not in self._classes:
            raise SchemaError(f"unknown base class {base!r}")
        inherited = set(self.all_field_names(base)) if base else set()
        seen = set(inherited)
        for field in fields:
            if field.name in seen:
                raise SchemaError(
                    f"duplicate field {field.name!r} in class {name!r}"
                )
            seen.add(field.name)
        definition = ClassDefinition(self._next_class_id, name, base, list(fields))
        self._next_class_id += 1
        self._classes[name] = definition
        self._by_id[definition.class_id] = definition
        self.save()
        return definition

    def add_field(self, class_name: str, field: FieldDefinition) -> None:
        """Add a field to an existing class (lazy upgrade on read)."""
        definition = self.get(class_name)
        if field.name in self.all_field_names(class_name):
            raise SchemaError(
                f"class {class_name!r} already has field {field.name!r}"
            )
        definition.version += 1
        field.since_version = definition.version
        definition.fields.append(field)
        self.save()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> ClassDefinition:
        """Class definition by name."""
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def get_by_id(self, class_id: int) -> ClassDefinition:
        """Class definition by id."""
        try:
            return self._by_id[class_id]
        except KeyError:
            raise SchemaError(f"unknown class id {class_id}") from None

    def has_class(self, name: str) -> bool:
        """Whether a class exists."""
        return name in self._classes

    def class_names(self) -> List[str]:
        """All class names in definition order."""
        return list(self._classes)

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """Whether ``name`` equals or transitively specializes ``ancestor``."""
        current: Optional[str] = name
        while current is not None:
            if current == ancestor:
                return True
            current = self.get(current).base
        return False

    def all_fields(self, name: str) -> List[FieldDefinition]:
        """Fields including inherited ones, bases first."""
        definition = self.get(name)
        inherited = self.all_fields(definition.base) if definition.base else []
        return inherited + list(definition.fields)

    def all_field_names(self, name: Optional[str]) -> List[str]:
        """Field names including inherited ones; [] for ``None``."""
        if name is None:
            return []
        return [f.name for f in self.all_fields(name)]

    def upgrade_state(self, class_id: int, version: int, state: dict) -> dict:
        """Fill defaults for fields added after ``version`` (lazy upgrade)."""
        definition = self.get_by_id(class_id)
        if version >= definition.version:
            return state
        chain: List[ClassDefinition] = []
        current: Optional[ClassDefinition] = definition
        while current is not None:
            chain.append(current)
            current = self.get(current.base) if current.base else None
        for cls in chain:
            for field in cls.fields:
                if field.since_version > version and field.name not in state:
                    state[field.name] = field.default
        return state
