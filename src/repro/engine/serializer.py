"""A self-contained binary serializer for object state.

Persistent objects are dictionaries mapping field names to values.  The
encoding is a compact tag-length format (no pickle — the store's
on-disk format must be independent of Python's object machinery):

========  =======================================================
tag       payload
========  =======================================================
``N``     none
``T/F``   true / false
``i``     zigzag varint integer
``f``     8-byte IEEE-754 double
``s``     varint length + UTF-8 bytes
``b``     varint length + raw bytes
``l``     varint count + elements (lists and tuples both decode
          to lists)
``d``     varint count + alternating key/value elements
========  =======================================================

Field names are encoded as strings inside the top-level dict.  The
format round-trips everything the engine stores: node attributes, OID
lists, (OID, offset, offset) link triples, text bodies and packed
bitmap bytes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import StorageError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_DICT = b"d"

import struct as _struct

_DOUBLE = _struct.Struct("<d")


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise StorageError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StorageError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise StorageError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else _overflow(value)


def _overflow(value: int) -> int:
    raise StorageError(f"integer {value} outside 64-bit range")


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out += _TAG_STR
        _write_varint(out, len(encoded))
        out += encoded
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        _write_varint(out, len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out += _TAG_DICT
        _write_varint(out, len(value))
        for key, item in value.items():
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise StorageError(f"unserializable value of type {type(value).__name__}")


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise StorageError("truncated value")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise StorageError("truncated float")
        return _DOUBLE.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise StorageError("truncated string")
        return data[pos:end].decode("utf-8"), end
    if tag == _TAG_BYTES:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise StorageError("truncated bytes")
        return bytes(data[pos:end]), end
    if tag == _TAG_LIST:
        count, pos = _read_varint(data, pos)
        items: List[Any] = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(data, pos)
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_value(data, pos)
            value, pos = _decode_value(data, pos)
            result[key] = value
        return result, pos
    raise StorageError(f"unknown serializer tag {tag!r}")


def encode(value: Any) -> bytes:
    """Serialize any supported value to bytes."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode`.

    Raises:
        StorageError: on truncation, unknown tags or trailing garbage.
    """
    value, pos = _decode_value(data, 0)
    if pos != len(data):
        raise StorageError(f"{len(data) - pos} trailing bytes after value")
    return value
