"""A self-contained binary serializer for object state.

Persistent objects are dictionaries mapping field names to values.  The
encoding is a compact tag-length format (no pickle — the store's
on-disk format must be independent of Python's object machinery):

========  =======================================================
tag       payload
========  =======================================================
``N``     none
``T/F``   true / false
``i``     zigzag varint integer
``f``     8-byte IEEE-754 double
``s``     varint length + UTF-8 bytes
``b``     varint length + raw bytes
``l``     varint count + elements (lists and tuples both decode
          to lists)
``d``     varint count + alternating key/value elements
========  =======================================================

Field names are encoded as strings inside the top-level dict.  The
format round-trips everything the engine stores: node attributes, OID
lists, (OID, offset, offset) link triples, text bodies and packed
bitmap bytes.

Decoding is *zero-copy friendly*: :func:`decode_view` accepts any
bytes-like buffer (``bytes``, ``bytearray``, ``memoryview``) and only
materialises owned objects for the values themselves — a record can be
decoded straight out of a pinned page frame without an intermediate
``bytes`` copy.  The decoder drives an explicit work stack instead of
recursing, so nesting depth is bounded by memory, not by the
interpreter's recursion limit, and the per-value call overhead of the
old recursive decoder is gone.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import StorageError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_DICT = b"d"

# Integer tag values for the decoder (indexing a bytes-like buffer
# yields ints; comparing ints avoids a one-byte slice per value).
_T_NONE = _TAG_NONE[0]
_T_TRUE = _TAG_TRUE[0]
_T_FALSE = _TAG_FALSE[0]
_T_INT = _TAG_INT[0]
_T_FLOAT = _TAG_FLOAT[0]
_T_STR = _TAG_STR[0]
_T_BYTES = _TAG_BYTES[0]
_T_LIST = _TAG_LIST[0]
_T_DICT = _TAG_DICT[0]

import struct as _struct

_DOUBLE = _struct.Struct("<d")

#: Sentinel for "dict frame is waiting for a key" (``None`` is a
#: legitimate decoded key, so a private object is required).
_MISSING = object()

_KIND_LIST = 0
_KIND_DICT = 1


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise StorageError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: Any, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StorageError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise StorageError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else _overflow(value)


def _overflow(value: int) -> int:
    raise StorageError(f"integer {value} outside 64-bit range")


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out += _TAG_STR
        _write_varint(out, len(encoded))
        out += encoded
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        _write_varint(out, len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out += _TAG_DICT
        _write_varint(out, len(value))
        for key, item in value.items():
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise StorageError(f"unserializable value of type {type(value).__name__}")


def _decode_value(data: Any, pos: int) -> Tuple[Any, int]:
    """Decode one value starting at ``pos``; returns ``(value, end)``.

    Iterative: containers push a frame onto an explicit work stack
    instead of recursing, so the hot path pays one loop iteration per
    value rather than a Python call, and pathologically nested input
    cannot blow the interpreter's recursion limit.  ``data`` may be any
    bytes-like buffer; only the decoded values themselves own memory.
    """
    n = len(data)
    # A frame is [kind, container, remaining, pending_key].
    stack: List[List[Any]] = []
    while True:
        if pos >= n:
            raise StorageError("truncated value")
        tag = data[pos]
        pos += 1
        if tag == _T_INT:
            raw, pos = _read_varint(data, pos)
            value: Any = _unzigzag(raw)
        elif tag == _T_STR:
            length, pos = _read_varint(data, pos)
            end = pos + length
            if end > n:
                raise StorageError("truncated string")
            value = str(data[pos:end], "utf-8")
            pos = end
        elif tag == _T_LIST:
            count, pos = _read_varint(data, pos)
            if count:
                stack.append([_KIND_LIST, [], count, _MISSING])
                continue
            value = []
        elif tag == _T_DICT:
            count, pos = _read_varint(data, pos)
            if count:
                stack.append([_KIND_DICT, {}, count, _MISSING])
                continue
            value = {}
        elif tag == _T_NONE:
            value = None
        elif tag == _T_TRUE:
            value = True
        elif tag == _T_FALSE:
            value = False
        elif tag == _T_FLOAT:
            if pos + 8 > n:
                raise StorageError("truncated float")
            value = _DOUBLE.unpack_from(data, pos)[0]
            pos += 8
        elif tag == _T_BYTES:
            length, pos = _read_varint(data, pos)
            end = pos + length
            if end > n:
                raise StorageError("truncated bytes")
            value = bytes(data[pos:end])
            pos = end
        else:
            raise StorageError(
                f"unknown serializer tag {bytes(data[pos - 1 : pos])!r}"
            )
        # Fold the completed value into the enclosing containers; a
        # container that becomes full is itself a completed value.
        while stack:
            frame = stack[-1]
            if frame[0] == _KIND_LIST:
                frame[1].append(value)
                frame[2] -= 1
                if frame[2]:
                    break
            else:
                if frame[3] is _MISSING:
                    frame[3] = value
                    break
                frame[1][frame[3]] = value
                frame[3] = _MISSING
                frame[2] -= 1
                if frame[2]:
                    break
            value = frame[1]
            stack.pop()
        else:
            return value, pos


def encode(value: Any) -> bytes:
    """Serialize any supported value to bytes."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode`.

    Raises:
        StorageError: on truncation, unknown tags or trailing garbage.
    """
    return decode_view(data)


def decode_view(data: Any) -> Any:
    """Deserialize any bytes-like buffer produced by :func:`encode`.

    Unlike :func:`decode`'s historical contract this accepts
    ``memoryview`` (e.g. a slice of a pinned page frame) and
    ``bytearray`` directly, decoding in place without first copying the
    buffer.  The caller must keep the underlying buffer alive and
    unmodified for the duration of the call only — every decoded value
    owns its memory.

    Raises:
        StorageError: on truncation, unknown tags or trailing garbage.
    """
    value, pos = _decode_value(data, 0)
    if pos != len(data):
        raise StorageError(f"{len(data) - pos} trailing bytes after value")
    return value
