"""Recursive-descent parser for the ad-hoc query language.

Grammar (keywords case-insensitive)::

    query      := ("find" | "count") kind [ "where" expr ]
                  [ "order" "by" IDENT [ "asc" | "desc" ] ]
                  [ "limit" NUMBER ]
    kind       := "nodes" | "text" | "form"
    expr       := and_expr ( "or" and_expr )*
    and_expr   := not_expr ( "and" not_expr )*
    not_expr   := "not" not_expr | primary
    primary    := "(" expr ")" | comparison
    comparison := IDENT op NUMBER
                | IDENT "between" NUMBER "and" NUMBER
    op         := "=" | "!=" | "<" | "<=" | ">" | ">="

``and`` binds tighter than ``or``; ``not`` tighter than both.
"""

from __future__ import annotations

from typing import List

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    ATTRIBUTES,
    And,
    Between,
    Comparison,
    Expr,
    Not,
    Or,
    OrderBy,
    Query,
)
from repro.query.lexer import Token, TokenType, tokenize

_KINDS = ("nodes", "text", "form")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if token.type is not TokenType.KEYWORD or token.text != word:
            raise QuerySyntaxError(f"expected {word!r}", token.position)
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        token = self._current
        if token.type is TokenType.KEYWORD and token.text == word:
            self._advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse_query(self) -> Query:
        aggregate = None
        if self._accept_keyword("count"):
            aggregate = "count"
        else:
            self._expect_keyword("find")
        token = self._current
        if token.type is not TokenType.KEYWORD or token.text not in _KINDS:
            raise QuerySyntaxError(
                f"expected one of {', '.join(_KINDS)}", token.position
            )
        kind = self._advance().text
        predicate = None
        if self._accept_keyword("where"):
            predicate = self.parse_expr()
        order_by = self._parse_order_by()
        limit = self._parse_limit()
        end = self._current
        if end.type is not TokenType.END:
            raise QuerySyntaxError(
                f"unexpected trailing input {end.text!r}", end.position
            )
        if aggregate is not None and (order_by or limit is not None):
            raise QuerySyntaxError(
                "count queries take no order by / limit", end.position
            )
        return Query(
            kind=kind,
            predicate=predicate,
            aggregate=aggregate,
            order_by=order_by,
            limit=limit,
        )

    def _parse_order_by(self):
        if not self._accept_keyword("order"):
            return None
        self._expect_keyword("by")
        token = self._current
        if token.type is not TokenType.IDENT or token.text not in ATTRIBUTES:
            raise QuerySyntaxError(
                "expected an attribute after 'order by'", token.position
            )
        attribute = self._advance().text
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderBy(attribute, descending)

    def _parse_limit(self):
        if not self._accept_keyword("limit"):
            return None
        value = self._number()
        if value < 0:
            raise QuerySyntaxError("limit must be non-negative", 0)
        return value

    def parse_expr(self) -> Expr:
        left = self.parse_and()
        while self._accept_keyword("or"):
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self._accept_keyword("and"):
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self._current
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.parse_expr()
            closing = self._current
            if closing.type is not TokenType.RPAREN:
                raise QuerySyntaxError("expected ')'", closing.position)
            self._advance()
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        token = self._current
        if token.type is not TokenType.IDENT:
            raise QuerySyntaxError("expected an attribute name", token.position)
        if token.text not in ATTRIBUTES:
            raise QuerySyntaxError(
                f"unknown attribute {token.text!r} "
                f"(one of {', '.join(sorted(ATTRIBUTES))})",
                token.position,
            )
        attribute = self._advance().text
        if self._accept_keyword("between"):
            low = self._number()
            self._expect_keyword("and")
            high = self._number()
            if low > high:
                raise QuerySyntaxError(
                    f"between bounds reversed ({low} > {high})", token.position
                )
            return Between(attribute, low, high)
        op_token = self._current
        if op_token.type is not TokenType.OPERATOR:
            raise QuerySyntaxError(
                "expected a comparison operator or 'between'", op_token.position
            )
        operator = self._advance().text
        value = self._number()
        return Comparison(attribute, operator, value)

    def _number(self) -> int:
        token = self._current
        if token.type is not TokenType.NUMBER:
            raise QuerySyntaxError("expected a number", token.position)
        self._advance()
        return int(token.text)


def parse(source: str) -> Query:
    """Parse a query string into a :class:`~repro.query.ast.Query`.

    Raises:
        QuerySyntaxError: with the offending source position.
    """
    return _Parser(tokenize(source)).parse_query()
