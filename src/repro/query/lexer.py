"""Tokenizer for the ad-hoc query language."""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List

from repro.errors import QuerySyntaxError


class TokenType(enum.Enum):
    """Lexical categories of the query language."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    END = "end"


#: Reserved words (case-insensitive).
KEYWORDS = frozenset(
    {
        "find", "count", "nodes", "text", "form", "where",
        "and", "or", "not", "between",
        "order", "by", "asc", "desc", "limit",
    }
)

_OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


@dataclasses.dataclass(frozen=True)
class Token:
    """One token: its type, normalized text and source position."""

    type: TokenType
    text: str
    position: int


def tokenize(source: str) -> List[Token]:
    """Tokenize a query string.

    Raises:
        QuerySyntaxError: on any character that starts no token.
    """
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    length = len(source)
    while position < length:
        ch = source[position]
        if ch.isspace():
            position += 1
            continue
        if ch == "(":
            yield Token(TokenType.LPAREN, "(", position)
            position += 1
            continue
        if ch == ")":
            yield Token(TokenType.RPAREN, ")", position)
            position += 1
            continue
        matched_op = next(
            (op for op in _OPERATORS if source.startswith(op, position)), None
        )
        if matched_op:
            yield Token(TokenType.OPERATOR, matched_op, position)
            position += len(matched_op)
            continue
        if ch.isdigit() or (ch == "-" and position + 1 < length and source[position + 1].isdigit()):
            start = position
            position += 1
            while position < length and source[position].isdigit():
                position += 1
            yield Token(TokenType.NUMBER, source[start:position], start)
            continue
        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            word = source[start:position]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token(TokenType.KEYWORD, lowered, start)
            else:
                yield Token(TokenType.IDENT, word, start)
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", position)
    yield Token(TokenType.END, "", length)
