"""Abstract syntax of the ad-hoc query language.

A query selects a node kind (``nodes`` / ``text`` / ``form``) and an
optional boolean predicate over the four integer node attributes.
Expression nodes are immutable dataclasses; :func:`attributes_used`
and the executor's planner walk them structurally.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Optional, Set, Union

#: Attribute names a predicate may reference.
ATTRIBUTES = frozenset({"uniqueId", "ten", "hundred", "million"})

#: Comparison operators.
OPERATORS = frozenset({"=", "!=", "<", "<=", ">", ">="})


@dataclasses.dataclass(frozen=True)
class Comparison:
    """``attribute op value`` (e.g. ``hundred >= 10``)."""

    attribute: str
    operator: str
    value: int


@dataclasses.dataclass(frozen=True)
class Between:
    """``attribute between low and high`` (inclusive both ends)."""

    attribute: str
    low: int
    high: int


@dataclasses.dataclass(frozen=True)
class And:
    """Conjunction of two predicates."""

    left: "Expr"
    right: "Expr"


@dataclasses.dataclass(frozen=True)
class Or:
    """Disjunction of two predicates."""

    left: "Expr"
    right: "Expr"


@dataclasses.dataclass(frozen=True)
class Not:
    """Negation of a predicate."""

    operand: "Expr"


Expr = Union[Comparison, Between, And, Or, Not]


@dataclasses.dataclass(frozen=True)
class OrderBy:
    """Result ordering: an attribute plus direction."""

    attribute: str
    descending: bool = False


@dataclasses.dataclass(frozen=True)
class Query:
    """A full query.

    Attributes:
        kind: "nodes", "text" or "form" (the class selector).
        predicate: optional boolean filter.
        aggregate: ``"count"`` for ``count ...`` queries, else None.
        order_by: optional result ordering (ignored for aggregates).
        limit: optional result-count cap (applied after ordering).
    """

    kind: str
    predicate: Optional[Expr]
    aggregate: Optional[str] = None
    order_by: Optional[OrderBy] = None
    limit: Optional[int] = None


def attributes_used(expr: Optional[Expr]) -> FrozenSet[str]:
    """The set of attribute names a predicate references."""
    found: Set[str] = set()

    def walk(node: Optional[Expr]) -> None:
        if node is None:
            return
        if isinstance(node, (Comparison, Between)):
            found.add(node.attribute)
        elif isinstance(node, (And, Or)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Not):
            walk(node.operand)

    walk(expr)
    return frozenset(found)


def unparse(query: "Query") -> str:
    """Render a query back to canonical source text.

    ``parse(unparse(q))`` is the identity for any well-formed query
    (the property tests pin this); the output uses minimal parentheses
    driven by operator precedence.
    """
    head = "count" if query.aggregate == "count" else "find"
    parts = [head, query.kind]
    if query.predicate is not None:
        parts += ["where", _unparse_expr(query.predicate, parent_level=0)]
    if query.order_by is not None:
        parts += ["order", "by", query.order_by.attribute]
        if query.order_by.descending:
            parts.append("desc")
    if query.limit is not None:
        parts += ["limit", str(query.limit)]
    return " ".join(parts)


#: Precedence levels: or < and < not < atoms.
_LEVEL_OR, _LEVEL_AND, _LEVEL_NOT, _LEVEL_ATOM = 0, 1, 2, 3


def _unparse_expr(expr: Expr, parent_level: int) -> str:
    if isinstance(expr, Comparison):
        return f"{expr.attribute} {expr.operator} {expr.value}"
    if isinstance(expr, Between):
        return f"{expr.attribute} between {expr.low} and {expr.high}"
    if isinstance(expr, Or):
        # The parser is left-associative; parenthesizing the right
        # operand one level tighter preserves right-nested trees.
        text = (
            f"{_unparse_expr(expr.left, _LEVEL_OR)} or "
            f"{_unparse_expr(expr.right, _LEVEL_OR + 1)}"
        )
        return f"({text})" if parent_level > _LEVEL_OR else text
    if isinstance(expr, And):
        text = (
            f"{_unparse_expr(expr.left, _LEVEL_AND)} and "
            f"{_unparse_expr(expr.right, _LEVEL_AND + 1)}"
        )
        return f"({text})" if parent_level > _LEVEL_AND else text
    if isinstance(expr, Not):
        return f"not {_unparse_expr(expr.operand, _LEVEL_NOT)}"
    raise TypeError(f"not an expression node: {expr!r}")


def evaluate(expr: Optional[Expr], attributes: dict) -> bool:
    """Evaluate a predicate against one node's attribute values."""
    if expr is None:
        return True
    if isinstance(expr, Comparison):
        value = attributes[expr.attribute]
        return {
            "=": value == expr.value,
            "!=": value != expr.value,
            "<": value < expr.value,
            "<=": value <= expr.value,
            ">": value > expr.value,
            ">=": value >= expr.value,
        }[expr.operator]
    if isinstance(expr, Between):
        return expr.low <= attributes[expr.attribute] <= expr.high
    if isinstance(expr, And):
        return evaluate(expr.left, attributes) and evaluate(expr.right, attributes)
    if isinstance(expr, Or):
        return evaluate(expr.left, attributes) or evaluate(expr.right, attributes)
    if isinstance(expr, Not):
        return not evaluate(expr.operand, attributes)
    raise TypeError(f"not an expression node: {expr!r}")
