"""Query execution with a one-rule index planner.

Execution strategy:

* if the predicate's *top level* constrains ``hundred`` or ``million``
  with a ``between`` or an equality/range comparison (possibly as one
  conjunct of an ``and``), the executor seeds the candidate set from
  the backend's indexed :meth:`range_hundred` / :meth:`range_million`
  and re-checks the full predicate on the candidates;
* otherwise it scans the structure with ``iter_nodes``.

Either way the result is exact; the plan only changes how many nodes
are touched.  :func:`explain` reports which plan would run — the tests
pin the planner's choices with it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import NodeKind
from repro.errors import QueryExecutionError
from repro.query.ast import And, Between, Comparison, Expr, Query, evaluate
from repro.query.parser import parse

_KIND_FILTER = {
    "nodes": None,
    "text": NodeKind.TEXT,
    "form": NodeKind.FORM,
}

#: Attributes with backend range support.
_INDEXED = ("hundred", "million")

#: Widest sensible bounds per indexed attribute.
_DOMAIN = {"hundred": (1, 100), "million": (1, 1_000_000)}


@dataclasses.dataclass
class QueryResult:
    """The outcome of a query: matching references plus plan info.

    For ``count`` queries :attr:`refs` is empty and :attr:`count`
    carries the aggregate; otherwise ``count == len(refs)``.
    """

    refs: List[NodeRef]
    plan: str
    nodes_examined: int
    count: int = 0

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        return iter(self.refs)


def _index_opportunity(expr: Optional[Expr]) -> Optional[Tuple[str, int, int]]:
    """An (attribute, low, high) range implied by the predicate, if any.

    Only ranges that are *necessary conditions* of the whole predicate
    are safe to seed from, i.e. the range itself or one conjunct of a
    top-level ``and`` chain.
    """
    if expr is None:
        return None
    if isinstance(expr, Between) and expr.attribute in _INDEXED:
        return expr.attribute, expr.low, expr.high
    if isinstance(expr, Comparison) and expr.attribute in _INDEXED:
        low, high = _DOMAIN[expr.attribute]
        if expr.operator == "=":
            return expr.attribute, expr.value, expr.value
        if expr.operator == "<":
            return expr.attribute, low, expr.value - 1
        if expr.operator == "<=":
            return expr.attribute, low, expr.value
        if expr.operator == ">":
            return expr.attribute, expr.value + 1, high
        if expr.operator == ">=":
            return expr.attribute, expr.value, high
        return None  # != is not a range
    if isinstance(expr, And):
        return _index_opportunity(expr.left) or _index_opportunity(expr.right)
    return None


def _attributes_of(db: HyperModelDatabase, ref: NodeRef) -> dict:
    return {
        "uniqueId": db.get_attribute(ref, "uniqueId"),
        "ten": db.get_attribute(ref, "ten"),
        "hundred": db.get_attribute(ref, "hundred"),
        "million": db.get_attribute(ref, "million"),
    }


def execute(
    db: HyperModelDatabase,
    query,
    structure_id: int = 1,
) -> QueryResult:
    """Run a query (string or parsed :class:`~repro.query.ast.Query`).

    Raises:
        QuerySyntaxError: for malformed query strings.
        QueryExecutionError: for semantic problems at run time.
    """
    if isinstance(query, str):
        query = parse(query)
    if not isinstance(query, Query):
        raise QueryExecutionError(f"not a query: {query!r}")
    kind = _KIND_FILTER[query.kind]

    opportunity = _index_opportunity(query.predicate)
    if opportunity is not None:
        attribute, low, high = opportunity
        if attribute == "hundred":
            candidates = db.range_hundred(low, high)
        else:
            candidates = db.range_million(low, high)
        plan = f"index-range({attribute} in {low}..{high})"
    else:
        candidates = list(db.iter_nodes(structure_id))
        plan = "scan"

    from_index = opportunity is not None
    refs: List[NodeRef] = []
    matched = 0
    examined = 0
    for ref in candidates:
        examined += 1
        if from_index and db.structure_of(ref) != structure_id:
            continue  # indexes span structures; queries are per-structure
        if kind is not None and db.kind_of(ref) is not kind:
            continue
        if evaluate(query.predicate, _attributes_of(db, ref)):
            matched += 1
            if query.aggregate != "count":
                refs.append(ref)

    if query.aggregate == "count":
        return QueryResult(
            refs=[], plan=plan + " +count", nodes_examined=examined,
            count=matched,
        )
    if query.order_by is not None:
        attribute = query.order_by.attribute
        refs.sort(
            key=lambda r: db.get_attribute(r, attribute),
            reverse=query.order_by.descending,
        )
        plan += f" +sort({attribute})"
    if query.limit is not None:
        refs = refs[: query.limit]
        plan += f" +limit({query.limit})"
    return QueryResult(
        refs=refs, plan=plan, nodes_examined=examined, count=len(refs)
    )


def explain(query) -> str:
    """The plan :func:`execute` would choose, without running it."""
    if isinstance(query, str):
        query = parse(query)
    opportunity = _index_opportunity(query.predicate)
    if opportunity is not None:
        attribute, low, high = opportunity
        return f"index-range({attribute} in {low}..{high})"
    return "scan"
