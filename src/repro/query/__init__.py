"""The ad-hoc query language (requirement R12).

Section 3.2 anticipates that, as hypertext databases grow past what
browsing can serve, "there might be a need for ad-hoc queries to find a
set of nodes satisfying certain criteria".  This package provides a
small declarative language over any HyperModel backend::

    find nodes where hundred between 10 and 19 and ten > 5
    find text where million <= 5000 or million > 995000
    find form where not (ten = 1)

The pipeline is classic: :mod:`~repro.query.lexer` tokenizes,
:mod:`~repro.query.parser` builds the :mod:`~repro.query.ast`, and
:mod:`~repro.query.executor` evaluates — using the backend's indexed
range lookups when the predicate allows (a one-rule planner), and a
filtered scan otherwise.
"""

from repro.query.ast import unparse
from repro.query.executor import QueryResult, execute, explain
from repro.query.parser import parse

__all__ = ["parse", "unparse", "execute", "explain", "QueryResult"]
