"""repro — a reproduction of the HyperModel benchmark (EDBT 1990).

The package implements the benchmark of Berre, Anderson and Mallison
end to end: the conceptual schema and test-database generator of
section 5, the twenty operations of section 6, the cold/warm
measurement protocol of section 5.3, four storage backends spanning the
architectural spectrum the paper compares, and the surrounding
requirements (schema evolution, versioning, access control, ad-hoc
queries, cooperative multi-user editing) of section 3.

Quickstart::

    from repro import HyperModelConfig, DatabaseGenerator, Operations
    from repro.backends import create_backend

    db = create_backend("memory")
    db.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=4)).generate(db)
    ops = Operations(db)
    print(ops.name_lookup(42))
"""

from repro.core.config import HyperModelConfig, LEVEL_NODE_COUNTS
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase
from repro.core.generator import DatabaseGenerator, GeneratedDatabase, GenerationStats
from repro.core.operations import CATALOG, OperationCatalog, Operations
from repro.core.schema import Schema, build_hypermodel_schema
from repro.core.verification import verify_database
from repro.errors import HyperModelError

__version__ = "1.0.0"

__all__ = [
    "HyperModelConfig",
    "LEVEL_NODE_COUNTS",
    "LinkAttributes",
    "NodeData",
    "NodeKind",
    "Bitmap",
    "HyperModelDatabase",
    "DatabaseGenerator",
    "GeneratedDatabase",
    "GenerationStats",
    "Operations",
    "OperationCatalog",
    "CATALOG",
    "Schema",
    "build_hypermodel_schema",
    "verify_database",
    "HyperModelError",
    "__version__",
]
