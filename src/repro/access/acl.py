"""Subtree-scoped access-control policies and the enforcing wrapper.

Policies attach to *document roots* (any node of the 1-N hierarchy) and
cover the whole subtree below them; a node's effective permissions come
from the nearest ancestor (including itself) carrying a policy for the
requesting principal, falling back to the ``PUBLIC`` pseudo-principal
and finally to the controller's default.  This matches R11's example:
set public read on one document structure and public write on another —
and because policy lookup never follows association links, links
*between* differently-protected structures keep working.

:class:`GuardedDatabase` wraps any backend and checks READ on every
retrieval and WRITE on every mutation, raising
:class:`~repro.errors.AccessDeniedError` with the principal, action and
node.  Structural queries that the schema needs to stay navigable
(lookup, kind) are treated as READ of the node itself.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.errors import AccessDeniedError

#: The pseudo-principal every user belongs to.
PUBLIC = "*"


class Permission(enum.Flag):
    """Grantable rights; WRITE does not imply READ (grant both)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


class AccessController:
    """Policy storage and resolution over one backend's 1-N hierarchy."""

    def __init__(
        self,
        db: HyperModelDatabase,
        default: Permission = Permission.READ_WRITE,
    ) -> None:
        self.db = db
        self.default = default
        #: uid -> {principal -> Permission}
        self._policies: Dict[int, Dict[str, Permission]] = {}

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------

    def set_policy(
        self, root_uid: int, principal: str, permission: Permission
    ) -> None:
        """Attach a policy to a document root (covers its subtree)."""
        self._policies.setdefault(root_uid, {})[principal] = permission

    def clear_policy(self, root_uid: int, principal: Optional[str] = None) -> None:
        """Remove one principal's policy, or the whole node's policies."""
        if root_uid not in self._policies:
            return
        if principal is None:
            del self._policies[root_uid]
        else:
            self._policies[root_uid].pop(principal, None)
            if not self._policies[root_uid]:
                del self._policies[root_uid]

    def policies_on(self, root_uid: int) -> Dict[str, Permission]:
        """The policies attached directly to one node."""
        return dict(self._policies.get(root_uid, {}))

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def effective_permission(self, principal: str, ref: NodeRef) -> Permission:
        """Resolve a node's permissions by walking up the 1-N hierarchy.

        The nearest ancestor carrying a policy relevant to the
        principal wins; a node-specific principal entry shadows a
        PUBLIC entry *on the same node*.
        """
        db = self.db
        current: Optional[NodeRef] = ref
        while current is not None:
            uid = db.get_attribute(current, "uniqueId")
            node_policies = self._policies.get(uid)
            if node_policies is not None:
                if principal in node_policies:
                    return node_policies[principal]
                if PUBLIC in node_policies:
                    return node_policies[PUBLIC]
            current = db.parent(current)
        return self.default

    def check(self, principal: str, ref: NodeRef, needed: Permission) -> None:
        """Raise unless the principal holds ``needed`` on the node.

        Raises:
            AccessDeniedError: when the effective permission lacks any
                needed right.
        """
        effective = self.effective_permission(principal, ref)
        if needed & ~effective:
            action = "write" if needed & Permission.WRITE else "read"
            raise AccessDeniedError(
                principal, action, self.db.get_attribute(ref, "uniqueId")
            )


class GuardedDatabase(HyperModelDatabase):
    """A HyperModel backend with per-operation access checks.

    All reads require READ on the touched node; all mutations require
    WRITE.  Creating links requires WRITE on the *source* side only
    (adding a reference annotates the source; R11 explicitly wants
    links between differently-protected structures to remain possible)
    — except the 1-N and M-N aggregations, which restructure both
    documents and therefore need WRITE on both ends.
    """

    def __init__(
        self,
        inner: HyperModelDatabase,
        controller: Optional[AccessController] = None,
        principal: str = PUBLIC,
    ) -> None:
        self.inner = inner
        self.controller = controller or AccessController(inner)
        self.principal = principal

    def as_principal(self, principal: str) -> "GuardedDatabase":
        """A view of the same database acting as another principal."""
        return GuardedDatabase(self.inner, self.controller, principal)

    def _read(self, ref: NodeRef) -> None:
        self.controller.check(self.principal, ref, Permission.READ)

    def _write(self, ref: NodeRef) -> None:
        self.controller.check(self.principal, ref, Permission.WRITE)

    # -- lifecycle (not permissioned) ---------------------------------------

    def open(self) -> None:
        self.inner.open()

    def close(self) -> None:
        self.inner.close()

    def commit(self) -> None:
        self.inner.commit()

    def abort(self) -> None:
        self.inner.abort()

    @property
    def is_open(self) -> bool:
        return self.inner.is_open

    @property
    def supports_object_identity(self) -> bool:
        return self.inner.supports_object_identity

    # -- creation -------------------------------------------------------------

    def create_node(self, data: NodeData) -> NodeRef:
        return self.inner.create_node(data)

    def add_child(self, parent: NodeRef, child: NodeRef) -> None:
        self._write(parent)
        self._write(child)
        self.inner.add_child(parent, child)

    def add_part(self, whole: NodeRef, part: NodeRef) -> None:
        self._write(whole)
        self._write(part)
        self.inner.add_part(whole, part)

    def add_reference(
        self, source: NodeRef, target: NodeRef, attrs: LinkAttributes
    ) -> None:
        self._write(source)
        self._read(target)
        self.inner.add_reference(source, target, attrs)

    # -- identity ---------------------------------------------------------------

    def lookup(self, unique_id: int) -> NodeRef:
        ref = self.inner.lookup(unique_id)
        self._read(ref)
        return ref

    def get_attribute(self, ref: NodeRef, name: str) -> int:
        self._read(ref)
        return self.inner.get_attribute(ref, name)

    def set_attribute(self, ref: NodeRef, name: str, value: int) -> None:
        self._write(ref)
        self.inner.set_attribute(ref, name, value)

    def kind_of(self, ref: NodeRef) -> NodeKind:
        self._read(ref)
        return self.inner.kind_of(ref)

    def structure_of(self, ref: NodeRef) -> int:
        self._read(ref)
        return self.inner.structure_of(ref)

    # -- range lookups --------------------------------------------------------------

    def range_hundred(self, low: int, high: int) -> List[NodeRef]:
        return self._readable(self.inner.range_hundred(low, high))

    def range_million(self, low: int, high: int) -> List[NodeRef]:
        return self._readable(self.inner.range_million(low, high))

    def _readable(self, refs: List[NodeRef]) -> List[NodeRef]:
        """Filter a result set down to nodes the principal may read."""
        allowed = []
        for ref in refs:
            if (
                self.controller.effective_permission(self.principal, ref)
                & Permission.READ
            ):
                allowed.append(ref)
        return allowed

    # -- traversal ----------------------------------------------------------------------

    def children(self, ref: NodeRef) -> List[NodeRef]:
        self._read(ref)
        return self.inner.children(ref)

    def parts(self, ref: NodeRef) -> List[NodeRef]:
        self._read(ref)
        return self.inner.parts(ref)

    def refs_to(self, ref: NodeRef) -> List[Tuple[NodeRef, LinkAttributes]]:
        self._read(ref)
        return self.inner.refs_to(ref)

    def parent(self, ref: NodeRef) -> Optional[NodeRef]:
        self._read(ref)
        return self.inner.parent(ref)

    def part_of(self, ref: NodeRef) -> List[NodeRef]:
        self._read(ref)
        return self.inner.part_of(ref)

    def refs_from(self, ref: NodeRef) -> List[NodeRef]:
        self._read(ref)
        return self.inner.refs_from(ref)

    # -- scan ------------------------------------------------------------------------------

    def scan_ten(self, structure_id: int = 1) -> int:
        count = 0
        for ref in self.inner.iter_nodes(structure_id):
            if (
                self.controller.effective_permission(self.principal, ref)
                & Permission.READ
            ):
                self.inner.get_attribute(ref, "ten")
                count += 1
        return count

    def iter_nodes(self, structure_id: int = 1) -> Iterator[NodeRef]:
        for ref in self.inner.iter_nodes(structure_id):
            if (
                self.controller.effective_permission(self.principal, ref)
                & Permission.READ
            ):
                yield ref

    # -- content --------------------------------------------------------------------------

    def get_text(self, ref: NodeRef) -> str:
        self._read(ref)
        return self.inner.get_text(ref)

    def set_text(self, ref: NodeRef, text: str) -> None:
        self._write(ref)
        self.inner.set_text(ref, text)

    def get_bitmap(self, ref: NodeRef) -> Bitmap:
        self._read(ref)
        return self.inner.get_bitmap(ref)

    def set_bitmap(self, ref: NodeRef, bitmap: Bitmap) -> None:
        self._write(ref)
        self.inner.set_bitmap(ref, bitmap)

    # -- result lists ----------------------------------------------------------------------

    def store_node_list(self, name: str, refs: Sequence[NodeRef]) -> None:
        self.inner.store_node_list(name, refs)

    def load_node_list(self, name: str) -> List[NodeRef]:
        return self.inner.load_node_list(name)

    # -- introspection ------------------------------------------------------------------------

    def node_count(self, structure_id: int = 1) -> int:
        return self.inner.node_count(structure_id)

    @property
    def backend_name(self) -> str:
        return f"guarded({self.inner.backend_name})"
