"""Access control for shared document structures (requirement R11).

R11's scenario: public *read* access on one document structure, public
*write* access on another, with hypertext links still allowed between
them.  :mod:`repro.access.acl` provides principals, per-subtree
policies resolved through the 1-N hierarchy, and a
:class:`~repro.access.acl.GuardedDatabase` wrapper that enforces them
on every backend operation.
"""

from repro.access.acl import (
    AccessController,
    GuardedDatabase,
    Permission,
    PUBLIC,
)

__all__ = ["AccessController", "GuardedDatabase", "Permission", "PUBLIC"]
