"""Private workspaces with check-out/check-in (requirement R9).

R9 asks for *cooperation* rather than competition between users doing
collaborative work on shared structures: "a notion of private and
shared workspaces is desirable ... it should be possible for two users
to update different nodes in the same structure", with updates becoming
visible to others when their author decides to share them.

:class:`SharedStore` wraps any HyperModel backend with a check-out
registry; a :class:`Workspace` checks nodes out (taking a long-lived
reservation, not a short lock), edits private copies, and publishes
everything at :meth:`~Workspace.check_in`.  Checking out a node someone
else holds raises :class:`~repro.errors.CheckOutConflictError` — the
cooperative analogue of a lock conflict, surfaced to the *user* instead
of blocking a transaction.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import NodeKind
from repro.errors import CheckOutConflictError, WorkspaceError


class SharedStore:
    """A shared database plus the check-out registry all users see."""

    def __init__(self, db: HyperModelDatabase) -> None:
        self.db = db
        self._mutex = threading.Lock()
        self._checked_out: Dict[int, str] = {}  # uid -> workspace name

    def workspace(self, name: str) -> "Workspace":
        """Create a private workspace for one user."""
        return Workspace(self, name)

    # -- registry ---------------------------------------------------------

    def _reserve(self, uid: int, owner: str) -> None:
        with self._mutex:
            holder = self._checked_out.get(uid)
            if holder is not None and holder != owner:
                raise CheckOutConflictError(
                    f"node {uid} is checked out to {holder!r}"
                )
            self._checked_out[uid] = owner

    def _release(self, uid: int, owner: str) -> None:
        with self._mutex:
            if self._checked_out.get(uid) == owner:
                del self._checked_out[uid]

    def holder_of(self, uid: int) -> Optional[str]:
        """Which workspace holds a node, if any."""
        with self._mutex:
            return self._checked_out.get(uid)

    def checked_out_count(self) -> int:
        """Number of nodes currently reserved."""
        with self._mutex:
            return len(self._checked_out)


class _Draft:
    """The private, editable copy of one checked-out node."""

    __slots__ = ("uid", "ref", "kind", "attributes", "text", "bitmap", "dirty")

    def __init__(
        self, uid: int, ref: NodeRef, kind: NodeKind, attributes: Dict[str, int]
    ) -> None:
        self.uid = uid
        self.ref = ref
        self.kind = kind
        self.attributes = attributes
        self.text: Optional[str] = None
        self.bitmap: Optional[Bitmap] = None
        self.dirty = False


class Workspace:
    """One user's private view: checked-out drafts over the shared data.

    Reads fall through to the shared database for nodes not checked
    out; edits require a check-out first.  ``check_in`` publishes and
    releases everything; ``abandon`` releases without publishing.
    """

    def __init__(self, shared: SharedStore, name: str) -> None:
        self.shared = shared
        self.name = name
        self._drafts: Dict[int, _Draft] = {}

    # ------------------------------------------------------------------
    # Check-out lifecycle
    # ------------------------------------------------------------------

    def check_out(self, uid: int) -> None:
        """Reserve a node and snapshot it into this workspace.

        Raises:
            CheckOutConflictError: if another workspace holds it.
        """
        if uid in self._drafts:
            return
        self.shared._reserve(uid, self.name)
        try:
            db = self.shared.db
            ref = db.lookup(uid)
            kind = db.kind_of(ref)
            attributes = {
                name: db.get_attribute(ref, name)
                for name in ("ten", "hundred", "million")
            }
            draft = _Draft(uid, ref, kind, attributes)
            if kind is NodeKind.TEXT:
                draft.text = db.get_text(ref)
            elif kind is NodeKind.FORM:
                draft.bitmap = db.get_bitmap(ref).copy()
            self._drafts[uid] = draft
        except Exception:
            self.shared._release(uid, self.name)
            raise

    def check_in(self) -> List[int]:
        """Publish every dirty draft to the shared database and release.

        Returns the uids whose changes became shareable.
        """
        db = self.shared.db
        published: List[int] = []
        for draft in self._drafts.values():
            if draft.dirty:
                for name, value in draft.attributes.items():
                    db.set_attribute(draft.ref, name, value)
                if draft.kind is NodeKind.TEXT:
                    db.set_text(draft.ref, draft.text)
                elif draft.kind is NodeKind.FORM:
                    db.set_bitmap(draft.ref, draft.bitmap)
                published.append(draft.uid)
        db.commit()
        self._release_all()
        return published

    def abandon(self) -> None:
        """Discard every draft and release the reservations."""
        self._release_all()

    def _release_all(self) -> None:
        for uid in list(self._drafts):
            self.shared._release(uid, self.name)
        self._drafts.clear()

    # ------------------------------------------------------------------
    # Private editing
    # ------------------------------------------------------------------

    def _draft(self, uid: int) -> _Draft:
        try:
            return self._drafts[uid]
        except KeyError:
            raise WorkspaceError(
                f"node {uid} is not checked out to workspace {self.name!r}"
            ) from None

    def set_attribute(self, uid: int, name: str, value: int) -> None:
        """Edit an integer attribute of a checked-out node (privately)."""
        draft = self._draft(uid)
        if name not in draft.attributes:
            raise KeyError(f"unknown node attribute {name!r}")
        draft.attributes[name] = value
        draft.dirty = True

    def set_text(self, uid: int, text: str) -> None:
        """Edit the body of a checked-out text node (privately)."""
        draft = self._draft(uid)
        if draft.kind is not NodeKind.TEXT:
            raise WorkspaceError(f"node {uid} is not a text node")
        draft.text = text
        draft.dirty = True

    def edit_bitmap(self, uid: int) -> Bitmap:
        """The private bitmap of a checked-out form node, for editing."""
        draft = self._draft(uid)
        if draft.kind is not NodeKind.FORM:
            raise WorkspaceError(f"node {uid} is not a form node")
        draft.dirty = True
        return draft.bitmap

    # ------------------------------------------------------------------
    # Reading (workspace view: drafts shadow the shared state)
    # ------------------------------------------------------------------

    def get_attribute(self, uid: int, name: str) -> int:
        """Read an attribute through this workspace's view."""
        draft = self._drafts.get(uid)
        if draft is not None and name in draft.attributes:
            return draft.attributes[name]
        db = self.shared.db
        return db.get_attribute(db.lookup(uid), name)

    def get_text(self, uid: int) -> str:
        """Read a text body through this workspace's view."""
        draft = self._drafts.get(uid)
        if draft is not None and draft.text is not None:
            return draft.text
        db = self.shared.db
        return db.get_text(db.lookup(uid))

    @property
    def checked_out(self) -> List[int]:
        """Uids currently checked out to this workspace."""
        return list(self._drafts)

    @property
    def dirty_count(self) -> int:
        """How many drafts carry unpublished edits."""
        return sum(1 for d in self._drafts.values() if d.dirty)
