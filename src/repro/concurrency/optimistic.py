"""Optimistic concurrency control over the object engine (R8).

The systems the paper's authors benchmarked used optimistic schemes —
which is exactly why they found non-conflicting multi-user update
workloads hard to define (section 7).  This module reproduces the
scheme so that difficulty can be demonstrated:

* an :class:`OptimisticTransaction` records, for every object read,
  the commit timestamp of the version it saw;
* writes are buffered privately;
* at commit, the **validation phase** re-reads every timestamp in the
  read set: any change means a concurrent transaction committed first
  and validation fails with :class:`~repro.errors.ConflictError`
  (first-committer-wins);
* a successful validation applies the write buffer through a regular
  engine transaction.

Coordination is serialized through the coordinator's mutex, making
validate-and-apply atomic with respect to other optimistic commits.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping

from repro.engine.store import ObjectStore
from repro.errors import ConflictError, TransactionError


def stale_reads(
    reads: Mapping[int, int], version_of: Callable[[int], int]
) -> List[int]:
    """The read-set entries whose pinned version is no longer current.

    This is the first-committer-wins validation kernel, shared by the
    engine-level :class:`OptimisticCoordinator` and the network
    server's ``commit_batch``/``prepare_batch`` verbs.  Under sharding
    each shard validates only the pins of the objects *it* owns (the
    router partitions the read set by placement), so validation stays
    a local comparison against that shard's own version counters — no
    cross-shard version exchange is ever needed.

    Args:
        reads: ``{oid: pinned version}`` — the version each object was
            first read at in this transaction.
        version_of: the authority's current version for an oid.

    Returns:
        The oids that changed since they were pinned, in read-set
        iteration order (deterministic for dict-backed read sets).
    """
    return [
        oid for oid, pinned in reads.items() if version_of(oid) != pinned
    ]


class OptimisticTransaction:
    """One optimistic unit of work; obtain from the coordinator."""

    def __init__(self, coordinator: "OptimisticCoordinator", txid: int) -> None:
        self._coordinator = coordinator
        self.txid = txid
        self.read_versions: Dict[int, int] = {}
        self.write_buffer: Dict[int, Dict[str, Any]] = {}
        self.finished = False

    def _require_active(self) -> None:
        if self.finished:
            raise TransactionError(f"optimistic txn {self.txid} already ended")

    # -- reads ------------------------------------------------------------

    def read(self, oid: int) -> Dict[str, Any]:
        """Read an object, seeing this transaction's own writes first."""
        self._require_active()
        if oid in self.write_buffer:
            return dict(self.write_buffer[oid])
        state, timestamp = self._coordinator._read_versioned(oid)
        # First read pins the version this transaction is based on.
        self.read_versions.setdefault(oid, timestamp)
        return state

    # -- writes -----------------------------------------------------------

    def write(self, oid: int, changes: Dict[str, Any]) -> None:
        """Buffer a partial update (a read is implied and validated)."""
        self._require_active()
        state = self.read(oid)
        state.update(changes)
        self.write_buffer[oid] = state

    # -- termination --------------------------------------------------------

    def commit(self) -> None:
        """Validate the read set, then apply the write buffer.

        Raises:
            ConflictError: if any object read has since been committed
                by another transaction (the transaction is aborted).
        """
        self._require_active()
        try:
            self._coordinator._validate_and_apply(self)
        finally:
            self.finished = True

    def abort(self) -> None:
        """Discard buffered work."""
        self.write_buffer.clear()
        self.finished = True


class OptimisticCoordinator:
    """Hands out optimistic transactions over one object store."""

    def __init__(self, store: ObjectStore) -> None:
        self.store = store
        self._mutex = threading.Lock()
        self._next_txid = 1
        self.validations = 0
        self.conflicts = 0

    def begin(self) -> OptimisticTransaction:
        """Start an optimistic transaction."""
        with self._mutex:
            txn = OptimisticTransaction(self, self._next_txid)
            self._next_txid += 1
            return txn

    # -- internals ----------------------------------------------------------

    def _read_versioned(self, oid: int):
        with self._mutex:
            state = self.store.get(oid)
            timestamp = self.store.record_timestamp(oid)
            return state, timestamp

    def _validate_and_apply(self, txn: OptimisticTransaction) -> None:
        with self._mutex:
            self.validations += 1
            stale = stale_reads(txn.read_versions, self.store.record_timestamp)
            if stale:
                self.conflicts += 1
                oid = stale[0]
                raise ConflictError(
                    f"optimistic txn {txn.txid}: object {oid} changed "
                    f"(read ts {txn.read_versions[oid]}, now "
                    f"{self.store.record_timestamp(oid)})"
                )
            if not txn.write_buffer:
                return
            engine_txn = self.store.begin()
            try:
                for oid, state in txn.write_buffer.items():
                    self.store.put(oid, state, txn=engine_txn)
                engine_txn.commit()
            except Exception:
                engine_txn.abort()
                raise

    @property
    def conflict_rate(self) -> float:
        """Fraction of validations that failed."""
        return self.conflicts / self.validations if self.validations else 0.0
