"""Parallel multi-user load over one server (the section 7 experiment).

The paper: "We have done some experiments with multi-user aspects by
starting up two and more HyperModel applications in parallel and
running the operations as for the single user case."  This module
reproduces that setup deterministically: N client handles share one
:class:`~repro.netsim.server.ObjectServer`, and a round-robin scheduler
interleaves one operation per client per round — a deterministic stand-
in for concurrent execution that keeps results reproducible.

Two load shapes:

* :func:`run_read_load` — the paper's single-user operation mix run by
  every client.  All requests serialize through the one server (its
  virtual clock is shared), so aggregate throughput is server-bound —
  quantifying R6's note that "most multi-user mechanisms require some
  centralized control which degrades performance" while each client's
  *warm* operations stay local and fast.
* :func:`run_update_load` — clients edit *disjoint* text-node sets and
  commit, then every client verifies it observes all published edits —
  the non-conflicting update workload the paper wanted.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List

from repro.backends.clientserver import ClientServerDatabase
from repro.core.generator import GeneratedDatabase
from repro.core.operations import Operations
from repro.core.text import edit_text_forward
from repro.netsim.server import ObjectServer


@dataclasses.dataclass
class ParallelLoadResult:
    """Outcome of one multi-user load run."""

    users: int
    operations_per_user: int
    total_operations: int
    server_seconds: float
    per_user_cache_hit_ratio: List[float]

    @property
    def aggregate_ops_per_second(self) -> float:
        """Total operations over total (simulated) server time."""
        if self.server_seconds <= 0:
            return float("inf")
        return self.total_operations / self.server_seconds


def _make_clients(server: ObjectServer, users: int) -> List[ClientServerDatabase]:
    clients = []
    for _ in range(users):
        client = ClientServerDatabase(server=server)
        client.open()
        clients.append(client)
    return clients


def _operation_mix(
    ops: Operations, gen: GeneratedDatabase, rng: random.Random
) -> List[Callable[[], object]]:
    """The paper's 'single user case' mix: one op per read category."""
    db = ops.db
    level = min(3, gen.config.levels - 1)
    return [
        lambda: ops.name_lookup(gen.random_uid(rng)),
        lambda: ops.group_lookup_1n(db.lookup(gen.random_internal_uid(rng))),
        lambda: ops.ref_lookup_1n(db.lookup(gen.random_non_root_uid(rng))),
        lambda: ops.closure_1n(db.lookup(gen.random_uid_at_level(rng, level))),
        lambda: ops.closure_mnatt(db.lookup(gen.random_uid_at_level(rng, level))),
    ]


def run_read_load(
    server: ObjectServer,
    gen: GeneratedDatabase,
    users: int = 2,
    operations_per_user: int = 50,
    seed: int = 1989,
) -> ParallelLoadResult:
    """Run the read-only operation mix on N parallel clients.

    Returns per-user cache behaviour and the shared server's simulated
    time, from which aggregate throughput follows.
    """
    clients = _make_clients(server, users)
    schedules: List[List[Callable[[], object]]] = []
    for index, client in enumerate(clients):
        rng = random.Random(seed + index)
        ops = Operations(client, gen.config)
        mix = _operation_mix(ops, gen, rng)
        schedules.append(
            [mix[i % len(mix)] for i in range(operations_per_user)]
        )

    started = server.clock.now
    for round_number in range(operations_per_user):
        for schedule in schedules:  # round-robin interleaving
            schedule[round_number]()
    elapsed = server.clock.now - started

    hit_ratios = [client.cache.stats.hit_ratio for client in clients]
    for client in clients:
        client.close()
    return ParallelLoadResult(
        users=users,
        operations_per_user=operations_per_user,
        total_operations=users * operations_per_user,
        server_seconds=elapsed,
        per_user_cache_hit_ratio=hit_ratios,
    )


@dataclasses.dataclass
class UpdateLoadResult:
    """Outcome of the non-conflicting update workload."""

    users: int
    edits_per_user: int
    published: Dict[int, List[int]]
    all_edits_visible_everywhere: bool

    @property
    def total_edits(self) -> int:
        """Edits committed across all users."""
        return sum(len(uids) for uids in self.published.values())


def run_update_load(
    server: ObjectServer,
    gen: GeneratedDatabase,
    users: int = 2,
    edits_per_user: int = 3,
    seed: int = 1990,
) -> UpdateLoadResult:
    """Disjoint-update workload: each client edits its own text nodes.

    After every client commits, each client re-reads *all* edited nodes
    through its own cache-missing path and checks the edits are
    visible — the shareability half of R9, across real client handles.
    """
    rng = random.Random(seed)
    needed = users * edits_per_user
    if needed > len(gen.text_uids):
        raise ValueError("structure has too few text nodes for this load")
    chosen = rng.sample(gen.text_uids, needed)
    assignments = {
        user: chosen[user * edits_per_user : (user + 1) * edits_per_user]
        for user in range(users)
    }

    clients = _make_clients(server, users)
    # Interleaved edits, then interleaved commits.
    for position in range(edits_per_user):
        for user, client in enumerate(clients):
            uid = assignments[user][position]
            ref = client.lookup(uid)
            client.set_text(ref, edit_text_forward(client.get_text(ref)))
    for client in clients:
        client.commit()

    # Cross-visibility: fresh caches, then verify every edit.
    all_visible = True
    for client in clients:
        client.cache.clear()
        for uids in assignments.values():
            for uid in uids:
                text = client.get_text(client.lookup(uid))
                if "version-2" not in text:
                    all_visible = False
    for client in clients:
        client.close()
    return UpdateLoadResult(
        users=users,
        edits_per_user=edits_per_user,
        published=assignments,
        all_edits_visible_everywhere=all_visible,
    )
