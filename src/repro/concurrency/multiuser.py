"""Multi-user loads over one shared server (the section 7 experiment).

The paper: "We have done some experiments with multi-user aspects by
starting up two and more HyperModel applications in parallel and
running the operations as for the single user case."  This module
reproduces that setup deterministically on the discrete-event
scheduler of :mod:`repro.netsim.sim`: N client handles — each with its
own :class:`~repro.netsim.cache.WorkstationCache`, virtual clock and
seeded PRNG — share one :class:`~repro.netsim.server.ObjectServer`
whose requests queue FIFO on a contended transport, so service time,
queueing delay and the latency/fault models are all charged on virtual
clocks and every interleaving is a pure function of the seed.

:class:`MultiUserHarness` is the single entry point, with three load
shapes:

* :meth:`MultiUserHarness.run_read_mix` — the paper's single-user
  operation mix on every client; aggregate throughput is server-bound
  (R6's "centralized control degrades performance") while each
  client's warm operations stay local.
* :meth:`MultiUserHarness.run_disjoint_updates` — clients edit
  disjoint text-node sets and commit; every client then verifies it
  observes all published edits (the shareability half of R9).
* :meth:`MultiUserHarness.run_transactions` — the optimistic
  concurrency workload behind ``repro bench-multiuser``: Zipf-skewed
  reads, one text-node write per transaction (hot shared set with
  probability ``conflict_rate``, a private partition otherwise),
  optimistic validation at commit, abort/retry on conflict.

The old round-robin entry points :func:`run_read_load` and
:func:`run_update_load` delegate to the harness and emit a
``DeprecationWarning``.
"""

from __future__ import annotations

import dataclasses
import random
import warnings
from typing import Callable, Dict, List, Optional

from repro.backends.clientserver import ClientServerDatabase
from repro.core.generator import GeneratedDatabase
from repro.core.operations import Operations
from repro.core.text import edit_text_backward, edit_text_forward
from repro.errors import ConflictError
from repro.netsim.config import NetworkConfig, SimConfig
from repro.netsim.latency import SimulatedClock
from repro.netsim.server import ObjectServer
from repro.netsim.sim import (
    ContendedTransport,
    DiscreteEventScheduler,
    Workstation,
    ZipfSampler,
)
from repro.obs import Instrumentation, resolve


@dataclasses.dataclass
class ParallelLoadResult:
    """Outcome of one multi-user read load run."""

    users: int
    operations_per_user: int
    total_operations: int
    server_seconds: float
    per_user_cache_hit_ratio: List[float]

    @property
    def aggregate_ops_per_second(self) -> float:
        """Total operations over the simulated makespan."""
        if self.server_seconds <= 0:
            return float("inf")
        return self.total_operations / self.server_seconds


@dataclasses.dataclass
class UpdateLoadResult:
    """Outcome of the non-conflicting update workload."""

    users: int
    edits_per_user: int
    published: Dict[int, List[int]]
    all_edits_visible_everywhere: bool

    @property
    def total_edits(self) -> int:
        """Edits committed across all users."""
        return sum(len(uids) for uids in self.published.values())


@dataclasses.dataclass
class TransactionLoadResult:
    """Outcome of one optimistic transaction load (one grid cell)."""

    users: int
    transactions_per_user: int
    conflict_rate: float
    #: Transactions that committed (after any number of retries).
    committed: int
    #: Optimistic aborts (each is one failed commit attempt).
    aborted: int
    #: Transactions abandoned after ``max_retries`` aborts.
    giveups: int
    #: Retry attempts issued (aborts that were followed by a retry).
    retries: int
    #: Simulated duration of the whole parallel run.
    makespan_seconds: float
    #: Virtual commit-to-commit latency of every transaction, ms.
    latencies_ms: List[float]
    #: The same latencies split per client (index = station index), so
    #: callers can build per-client histograms and *merge* them into
    #: the fleet-wide distribution instead of pooling raw samples.
    per_user_latencies_ms: List[List[float]]
    #: Server-side commit/conflict counts for this run.
    server_commits: int
    server_conflicts: int
    #: WAL durability points taken during this run (0 without a WAL).
    wal_syncs: int
    #: Aggregate FIFO queueing delay and server busy time, seconds.
    queue_seconds: float
    busy_seconds: float

    @property
    def throughput_per_second(self) -> float:
        """Committed transactions per simulated second."""
        if self.makespan_seconds <= 0:
            return float("inf")
        return self.committed / self.makespan_seconds

    @property
    def abort_rate(self) -> float:
        """Aborted commit attempts over all commit attempts."""
        attempts = self.committed + self.aborted
        return self.aborted / attempts if attempts else 0.0

    @property
    def fsyncs_per_commit(self) -> float:
        """WAL durability points per committed transaction."""
        if self.server_commits <= 0:
            return 0.0
        return self.wal_syncs / self.server_commits


def _operation_mix(
    ops: Operations, gen: GeneratedDatabase, rng: random.Random
) -> List[Callable[[], object]]:
    """The paper's 'single user case' mix: one op per read category."""
    db = ops.db
    level = min(3, gen.config.levels - 1)
    return [
        lambda: ops.name_lookup(gen.random_uid(rng)),
        lambda: ops.group_lookup_1n(db.lookup(gen.random_internal_uid(rng))),
        lambda: ops.ref_lookup_1n(db.lookup(gen.random_non_root_uid(rng))),
        lambda: ops.closure_1n(db.lookup(gen.random_uid_at_level(rng, level))),
        lambda: ops.closure_mnatt(db.lookup(gen.random_uid_at_level(rng, level))),
    ]


class MultiUserHarness:
    """N simulated workstations on one server, scheduled by events.

    Args:
        server: the shared :class:`ObjectServer` (its latency model is
            the wire every workstation sees).
        gen: the generated structure the workload navigates.
        users: workstation count.
        seed: master seed; per-station PRNGs derive as ``seed + index``.
        network: per-client settings (cache size, retries, push-down,
            concurrency mode); defaults to ``NetworkConfig()``.
        sim: scheduler settings (think time, service time, virtual
            fsync cost, Zipf skew); defaults to ``SimConfig(seed=seed)``.
        instrumentation: counter/span/histogram sink shared by the
            stations and the transport (``backend.mp.*``).
        recorder: optional
            :class:`~repro.obs.timeseries.FlightRecorder`; when set
            (with a positive ``sample_cadence_seconds``) the scheduler
            samples it on the virtual clock, so every load shape can
            emit a deterministic timeline.
        sample_cadence_seconds: virtual seconds between flight-recorder
            samples (0 disables sampling).
        sample_label: label stamped on each sample (benchmarks set this
            per grid cell; mutable between runs).
    """

    def __init__(
        self,
        server: ObjectServer,
        gen: GeneratedDatabase,
        users: int = 2,
        seed: int = 1989,
        network: Optional[NetworkConfig] = None,
        sim: Optional[SimConfig] = None,
        instrumentation: Optional[Instrumentation] = None,
        recorder=None,
        sample_cadence_seconds: float = 0.0,
        sample_label: Optional[str] = None,
    ) -> None:
        if users < 1:
            raise ValueError("need at least one user")
        self.server = server
        self.gen = gen
        self.users = users
        self.seed = seed
        self.network = network or NetworkConfig()
        self.sim = sim or SimConfig(seed=seed)
        self.instrumentation = resolve(instrumentation)
        self.recorder = recorder
        self.sample_cadence_seconds = sample_cadence_seconds
        self.sample_label = sample_label

    # -- plumbing --------------------------------------------------------

    def _stations(self, network: NetworkConfig) -> List[Workstation]:
        stations = []
        for index in range(self.users):
            client = ClientServerDatabase(
                network=network,
                server=self.server,
                instrumentation=self.instrumentation,
                clock=SimulatedClock(),
                client_id=f"w{index:02d}",
            )
            client.open()
            stations.append(
                Workstation(index, client, random.Random(self.seed + index))
            )
        return stations

    def _transport(self) -> ContendedTransport:
        return ContendedTransport(
            self.server.latency,
            self.sim.service_time_seconds,
            instrumentation=self.instrumentation,
            fallback_clock=self.server.clock,
        )

    def _scheduler(self, transport: ContendedTransport) -> DiscreteEventScheduler:
        return DiscreteEventScheduler(
            self.server,
            transport,
            self.sim.think_time_seconds,
            recorder=self.recorder,
            sample_cadence_seconds=self.sample_cadence_seconds,
            sample_label=self.sample_label,
        )

    def _teardown(self, stations: List[Workstation]) -> None:
        for station in stations:
            station.client.close()
            # The client is gone for good (unlike the cold/warm
            # close/reopen cycle) — its cache gauges must not linger
            # in the registry reading a dead cache.
            station.client.cache.unregister_gauges()
            self.server.unsubscribe(station.client.cache)

    # -- load shapes -----------------------------------------------------

    def run_read_mix(
        self, operations_per_user: int = 50
    ) -> ParallelLoadResult:
        """The paper's read mix on every workstation, event-scheduled."""
        stations = self._stations(self.network)
        jobs = []
        for station in stations:
            ops = Operations(station.client, self.gen.config)
            mix = _operation_mix(ops, self.gen, station.rng)
            jobs.append(
                (
                    station,
                    [mix[i % len(mix)] for i in range(operations_per_user)],
                )
            )
        scheduler = self._scheduler(self._transport())
        makespan = scheduler.run(jobs)
        hit_ratios = [s.client.cache.stats.hit_ratio for s in stations]
        self._teardown(stations)
        return ParallelLoadResult(
            users=self.users,
            operations_per_user=operations_per_user,
            total_operations=self.users * operations_per_user,
            server_seconds=makespan,
            per_user_cache_hit_ratio=hit_ratios,
        )

    def run_disjoint_updates(
        self, edits_per_user: int = 3
    ) -> UpdateLoadResult:
        """Disjoint text edits, then cross-visibility verification."""
        rng = random.Random(self.seed)
        needed = self.users * edits_per_user
        if needed > len(self.gen.text_uids):
            raise ValueError("structure has too few text nodes for this load")
        chosen = rng.sample(self.gen.text_uids, needed)
        assignments = {
            user: chosen[user * edits_per_user : (user + 1) * edits_per_user]
            for user in range(self.users)
        }

        stations = self._stations(self.network)
        jobs = []
        for station in stations:
            client = station.client

            def _edit(client, uid):
                def task():
                    ref = client.lookup(uid)
                    client.set_text(
                        ref, edit_text_forward(client.get_text(ref))
                    )

                return task

            tasks = [
                _edit(client, uid) for uid in assignments[station.index]
            ]
            tasks.append(client.commit)
            jobs.append((station, tasks))
        scheduler = self._scheduler(self._transport())
        scheduler.run(jobs)

        # Cross-visibility: fresh caches, then verify every edit.
        all_visible = True
        for station in stations:
            client = station.client
            client.cache.clear()
            for uids in assignments.values():
                for uid in uids:
                    text = client.get_text(client.lookup(uid))
                    if "version-2" not in text:
                        all_visible = False
        self._teardown(stations)
        return UpdateLoadResult(
            users=self.users,
            edits_per_user=edits_per_user,
            published=assignments,
            all_edits_visible_everywhere=all_visible,
        )

    def run_transactions(
        self,
        transactions_per_user: int = 16,
        reads_per_txn: int = 4,
        conflict_rate: float = 0.0,
        hot_set_size: int = 8,
        max_retries: int = 8,
    ) -> TransactionLoadResult:
        """The optimistic transaction workload (one benchmark cell).

        Each transaction reads ``reads_per_txn`` Zipf-skewed records
        from the structure's *internal* nodes, then edits one text
        node: with probability ``conflict_rate`` a member of the
        shared hot set (``hot_set_size`` text nodes everyone fights
        over), otherwise a node from the client's private partition.
        The commit ships write set + read versions in one validated
        request; a conflict aborts the transaction, which retries from
        the top after ``sim.retry_backoff_seconds`` — up to
        ``max_retries`` times before giving up.

        At ``conflict_rate = 0`` the read pools and write partitions
        are disjoint across clients by construction, so the abort rate
        is exactly zero — the benchmark's control cell.
        """
        if not 0.0 <= conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be within [0, 1]")
        network = (
            self.network
            if self.network.concurrency == "optimistic"
            else self.network.replace(concurrency="optimistic")
        )
        text_set = set(self.gen.text_uids)
        read_pool = [
            uid
            for uid in range(self.gen.min_uid, self.gen.max_uid + 1)
            if uid not in text_set
        ]
        hot = list(self.gen.text_uids[:hot_set_size])
        rest = list(self.gen.text_uids[hot_set_size:])
        if len(rest) < self.users:
            raise ValueError(
                "structure has too few text nodes for per-client"
                f" private partitions ({len(rest)} spare, {self.users}"
                " users); generate a deeper structure"
            )
        private = [rest[i :: self.users] for i in range(self.users)]
        zipf = ZipfSampler(len(read_pool), self.sim.zipf_theta)

        stations = self._stations(network)
        instr = self.instrumentation
        tallies = {"committed": 0, "aborted": 0, "giveups": 0, "retries": 0}
        latencies: List[float] = []
        per_user: List[List[float]] = [[] for _ in range(self.users)]
        # Settable OCC gauges: transactions currently between first
        # read and final outcome, and cumulative optimistic aborts.
        # Updated at state transitions (not sampled), so the flight
        # recorder sees the value as of each virtual sample instant.
        occ = {"inflight": 0}
        instr.set_gauge("backend.occ.inflight", 0.0)
        instr.set_gauge("backend.occ.aborted", 0.0)

        def _transaction(station: Workstation) -> Callable[[], object]:
            """One transaction as a two-event state machine.

            The read phase (reads + buffered write) and the commit are
            *separate* scheduler events, so other stations' commits
            interleave between a read and the validation that checks
            it — the window in which optimistic conflicts arise.
            """
            client = station.client
            rng = station.rng
            mine = private[station.index]
            state = {"start": None, "attempts": 0}

            def _finish() -> None:
                latency = (station.clock.now - state["start"]) * 1000.0
                latencies.append(latency)
                per_user[station.index].append(latency)
                occ["inflight"] -= 1
                instr.set_gauge(
                    "backend.occ.inflight", float(occ["inflight"])
                )

            def read_phase() -> Callable[[], object]:
                if state["start"] is None:
                    state["start"] = station.clock.now
                    occ["inflight"] += 1
                    instr.set_gauge(
                        "backend.occ.inflight", float(occ["inflight"])
                    )
                for _ in range(reads_per_txn):
                    uid = read_pool[zipf.sample(rng)]
                    client.get_attribute(uid, "hundred")
                if hot and rng.random() < conflict_rate:
                    target = hot[rng.randrange(len(hot))]
                else:
                    target = mine[rng.randrange(len(mine))]
                text = client.get_text(target)
                client.set_text(
                    target,
                    edit_text_forward(text)
                    if "version1" in text
                    else edit_text_backward(text),
                )
                return commit_phase

            def commit_phase() -> Optional[Callable[[], object]]:
                try:
                    client.commit()
                except ConflictError:
                    # commit() already dropped the write buffer and
                    # invalidated the stale cached copies.
                    tallies["aborted"] += 1
                    instr.count("backend.mp.txn.aborted")
                    instr.set_gauge(
                        "backend.occ.aborted", float(tallies["aborted"])
                    )
                    state["attempts"] += 1
                    if state["attempts"] > max_retries:
                        tallies["giveups"] += 1
                        instr.count("backend.mp.txn.giveups")
                        _finish()
                        return None
                    tallies["retries"] += 1
                    instr.count("backend.mp.txn.retries")
                    if self.sim.retry_backoff_seconds:
                        station.clock.advance(
                            self.sim.retry_backoff_seconds
                        )
                    return read_phase
                tallies["committed"] += 1
                instr.count("backend.mp.txn.committed")
                _finish()
                return None

            return read_phase

        jobs = [
            (
                station,
                [_transaction(station) for _ in range(transactions_per_user)],
            )
            for station in stations
        ]
        commits_before = self.server.stats.commits
        conflicts_before = self.server.stats.commit_conflicts
        syncs_before = self.server.wal.syncs if self.server.wal else 0
        transport = self._transport()
        scheduler = self._scheduler(transport)
        makespan = scheduler.run(jobs)
        self._teardown(stations)
        return TransactionLoadResult(
            users=self.users,
            transactions_per_user=transactions_per_user,
            conflict_rate=conflict_rate,
            committed=tallies["committed"],
            aborted=tallies["aborted"],
            giveups=tallies["giveups"],
            retries=tallies["retries"],
            makespan_seconds=makespan,
            latencies_ms=latencies,
            per_user_latencies_ms=per_user,
            server_commits=self.server.stats.commits - commits_before,
            server_conflicts=(
                self.server.stats.commit_conflicts - conflicts_before
            ),
            wal_syncs=(
                (self.server.wal.syncs if self.server.wal else 0)
                - syncs_before
            ),
            queue_seconds=transport.queue_seconds,
            busy_seconds=transport.busy_seconds,
        )


# ----------------------------------------------------------------------
# Deprecated round-robin entry points (one release of grace)
# ----------------------------------------------------------------------

#: Shim names already warned about in this process: each deprecation
#: fires once, not once per call (a loop over the shims must not spam
#: the warning on every iteration).
_WARNED_SHIMS: set = set()


def _warn_shim(name: str, message: str) -> None:
    if name not in _WARNED_SHIMS:
        _WARNED_SHIMS.add(name)
        warnings.warn(message, DeprecationWarning, stacklevel=3)


def run_read_load(
    server: ObjectServer,
    gen: GeneratedDatabase,
    users: int = 2,
    operations_per_user: int = 50,
    seed: int = 1989,
) -> ParallelLoadResult:
    """Deprecated: use :meth:`MultiUserHarness.run_read_mix`."""
    _warn_shim(
        "run_read_load",
        "run_read_load is deprecated; use"
        " MultiUserHarness(server, gen, ...).run_read_mix(...)",
    )
    harness = MultiUserHarness(server, gen, users=users, seed=seed)
    return harness.run_read_mix(operations_per_user=operations_per_user)


def run_update_load(
    server: ObjectServer,
    gen: GeneratedDatabase,
    users: int = 2,
    edits_per_user: int = 3,
    seed: int = 1990,
) -> UpdateLoadResult:
    """Deprecated: use :meth:`MultiUserHarness.run_disjoint_updates`."""
    _warn_shim(
        "run_update_load",
        "run_update_load is deprecated; use"
        " MultiUserHarness(server, gen, ...).run_disjoint_updates(...)",
    )
    harness = MultiUserHarness(server, gen, users=users, seed=seed)
    return harness.run_disjoint_updates(edits_per_user=edits_per_user)
