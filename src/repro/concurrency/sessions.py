"""Deterministic multi-user scenario drivers (the section 7 experiment).

The paper reports early multi-user experiments: several HyperModel
applications running the single-user operations in parallel, with the
caveat that optimistic systems make non-conflicting update workloads
hard to stage.  These drivers reproduce both sides:

* :func:`run_cooperative_scenario` — the R9 success case: each user
  checks out a *disjoint* set of nodes of the same structure, edits
  privately, and checks in; everything publishes, nothing conflicts;
* :func:`run_conflicting_scenario` — two users target the *same* node;
  exactly one check-out wins and the loser observes the conflict.

Interleaving is deterministic (round-robin over scripted steps), so the
scenarios are usable as tests, not just demonstrations.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

from repro.concurrency.workspace import SharedStore, Workspace
from repro.core.generator import GeneratedDatabase
from repro.core.interface import HyperModelDatabase
from repro.core.text import edit_text_forward
from repro.errors import CheckOutConflictError


@dataclasses.dataclass
class CooperativeScenarioResult:
    """What happened in a multi-user scenario run."""

    users: int
    nodes_per_user: int
    published: List[List[int]]
    conflicts: int

    @property
    def total_published(self) -> int:
        """Total nodes whose edits became shareable."""
        return sum(len(p) for p in self.published)


def _disjoint_text_uids(
    gen: GeneratedDatabase, users: int, nodes_per_user: int, seed: int
) -> List[List[int]]:
    rng = random.Random(seed)
    needed = users * nodes_per_user
    if needed > len(gen.text_uids):
        raise ValueError(
            f"scenario needs {needed} text nodes, structure has "
            f"{len(gen.text_uids)}"
        )
    chosen = rng.sample(gen.text_uids, needed)
    return [
        chosen[i * nodes_per_user : (i + 1) * nodes_per_user]
        for i in range(users)
    ]


def run_cooperative_scenario(
    db: HyperModelDatabase,
    gen: GeneratedDatabase,
    users: int = 2,
    nodes_per_user: int = 3,
    seed: int = 7,
) -> CooperativeScenarioResult:
    """Two (or more) users update *different* nodes of one structure.

    Steps, interleaved round-robin: every user checks out their nodes,
    then every user edits every draft, then every user checks in.
    All check-outs succeed (the sets are disjoint) and every edit is
    published — requirement R9's scenario end to end.
    """
    shared = SharedStore(db)
    assignments = _disjoint_text_uids(gen, users, nodes_per_user, seed)
    workspaces: List[Workspace] = [
        shared.workspace(f"user-{i}") for i in range(users)
    ]

    # Round 1: everyone checks out (interleaved).
    for position in range(nodes_per_user):
        for user, workspace in enumerate(workspaces):
            workspace.check_out(assignments[user][position])

    # Round 2: everyone edits privately.
    for user, workspace in enumerate(workspaces):
        for uid in assignments[user]:
            workspace.set_text(uid, edit_text_forward(workspace.get_text(uid)))

    # Shared state is unchanged while edits are private.
    published: List[List[int]] = []
    for workspace in workspaces:
        published.append(workspace.check_in())

    return CooperativeScenarioResult(
        users=users,
        nodes_per_user=nodes_per_user,
        published=published,
        conflicts=0,
    )


def run_conflicting_scenario(
    db: HyperModelDatabase,
    gen: GeneratedDatabase,
    seed: int = 11,
) -> CooperativeScenarioResult:
    """Two users race for the *same* node: one wins, one conflicts."""
    shared = SharedStore(db)
    rng = random.Random(seed)
    uid = gen.random_text_uid(rng)
    winner = shared.workspace("winner")
    loser = shared.workspace("loser")

    winner.check_out(uid)
    conflicts = 0
    try:
        loser.check_out(uid)
    except CheckOutConflictError:
        conflicts = 1

    winner.set_text(uid, edit_text_forward(winner.get_text(uid)))
    published = winner.check_in()

    # The reservation is released after check-in: the loser may retry.
    loser.check_out(uid)
    loser.abandon()

    return CooperativeScenarioResult(
        users=2,
        nodes_per_user=1,
        published=[published, []],
        conflicts=conflicts,
    )
