"""Multi-user support: cooperation and concurrency control (R8/R9).

Three layers reproduce the paper's section 7 multi-user experiments:

* :mod:`repro.concurrency.workspace` — **long transactions as
  cooperative workspaces**: users check nodes out of a shared database
  into private workspaces, edit locally, and check back in to make
  their updates shareable (requirement R9's scenario verbatim);
* :mod:`repro.concurrency.optimistic` — **optimistic concurrency
  control** over the object engine, with read-set validation at commit
  (the scheme the systems the authors benchmarked used, and the reason
  they found conflicting updates hard to stage);
* :mod:`repro.concurrency.sessions` — deterministic multi-user
  scenario drivers used by the example application and the tests.
"""

from repro.concurrency.workspace import SharedStore, Workspace
from repro.concurrency.optimistic import OptimisticCoordinator, OptimisticTransaction
from repro.concurrency.sessions import (
    CooperativeScenarioResult,
    run_cooperative_scenario,
    run_conflicting_scenario,
)
from repro.concurrency.multiuser import (
    MultiUserHarness,
    ParallelLoadResult,
    TransactionLoadResult,
    UpdateLoadResult,
    run_read_load,
    run_update_load,
)

__all__ = [
    "SharedStore",
    "Workspace",
    "OptimisticCoordinator",
    "OptimisticTransaction",
    "CooperativeScenarioResult",
    "run_cooperative_scenario",
    "run_conflicting_scenario",
    "MultiUserHarness",
    "ParallelLoadResult",
    "TransactionLoadResult",
    "UpdateLoadResult",
    "run_read_load",
    "run_update_load",
]
