"""The benchmark harness: the paper's measurement protocol.

* :mod:`repro.harness.timing` — timers (wall clock + simulated network
  clock) and summary statistics;
* :mod:`repro.harness.protocol` — the section 5.3 cold/warm operation
  sequence (open, 50 cold, commit, 50 warm, close) normalized to
  milliseconds per node;
* :mod:`repro.harness.results` — result records with JSON persistence;
* :mod:`repro.harness.report` — paper-style result tables;
* :mod:`repro.harness.runner` — the full grid driver
  (backends x levels x operations);
* :mod:`repro.harness.crashtest` — the crash-recovery matrix (kill the
  engine at every mutating I/O operation, reopen, verify atomicity and
  durability), surfaced as the ``repro crashtest`` CLI subcommand.
"""

from repro.harness.protocol import ColdWarmResult, run_operation_sequence
from repro.harness.results import ResultSet
from repro.harness.runner import BenchmarkRunner, RunnerConfig
from repro.harness.timing import Stats, Timer

__all__ = [
    "ColdWarmResult",
    "run_operation_sequence",
    "ResultSet",
    "BenchmarkRunner",
    "RunnerConfig",
    "Stats",
    "Timer",
]
