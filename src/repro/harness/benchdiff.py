"""The bench-diff regression gate.

Compares two ``BENCH_*.json`` documents cell by cell and decides, per
(backend, operation, mode), whether the candidate regressed against
the baseline.  The comparison is **percentile-aware**: because tail
quantiles of a micro-benchmark are noisier than medians, each quantile
gets its own relative threshold —

====  =========  ==========================================
key   threshold  rationale
====  =========  ==========================================
p50   +25 %      medians are stable; small drifts are real
p90   +35 %      the acceptance criterion's quantile
p99   +50 %      tails flap; only large moves count
====  =========  ==========================================

plus an **absolute floor**: a cell whose baseline and candidate values
are both under :data:`ABSOLUTE_FLOOR_MS` never regresses — at tens of
microseconds the timer jitter exceeds any honest signal.

Two document shapes are understood:

* the closure micro-benchmark (``benchmark: closure-batch-traversal``,
  written by :mod:`repro.harness.batchbench`): ``cells[backend][op]``
  with ``p50_ms``/``p90_ms``/``p99_ms`` (older documents fall back to
  ``median_ms`` as p50);
* harness :class:`~repro.harness.results.ResultSet` documents
  (``{"results": [...]}``): each result contributes a *cold* and a
  *warm* mode using its ``cold_hist``/``warm_hist`` summaries.

Closure baseline cells may additionally carry a ``budget_ms_per_node``
column — an absolute per-node latency ceiling.  A shared cell whose
candidate ``median_ms_per_node`` exceeds the baseline's budget emits a
``budget`` row that regresses regardless of the relative thresholds,
so a slow creep that stays under +25 % per PR still trips the gate
once the absolute budget is gone.

:func:`diff_documents` returns the row list; :func:`format_diff`
renders the table; the CLI's ``bench-diff`` exits non-zero when any
row regresses — that exit code *is* the gate.  The inverse workflow is
:func:`refresh_improvements`: when a candidate *beats* a baseline cell
by more than the p50 threshold, the ratchet rewrites that cell (and
tightens its budget) so the win becomes the new floor — run via
``repro bench-diff --refresh-improvement``.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple

#: Per-quantile relative regression thresholds (candidate vs baseline).
DEFAULT_THRESHOLDS: Dict[str, float] = {"p50": 0.25, "p90": 0.35, "p99": 0.50}

#: Cells where both sides sit under this many milliseconds never
#: regress: the timer's own jitter dominates down there.
ABSOLUTE_FLOOR_MS = 0.05


@dataclasses.dataclass
class DiffRow:
    """One (backend, op, mode, quantile) comparison."""

    backend: str
    op_id: str
    mode: str
    quantile: str
    baseline_ms: float
    candidate_ms: float
    change: float
    threshold: float
    regressed: bool

    @property
    def label(self) -> str:
        return f"{self.backend}/{self.op_id}/{self.mode}/{self.quantile}"


def _closure_cells(document: Dict[str, Any]) -> Dict[Tuple[str, str, str], Dict[str, float]]:
    """(backend, op, mode) -> quantile values, for closure documents."""
    out: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for backend, per_op in document.get("cells", {}).items():
        for op_id, cell in per_op.items():
            values: Dict[str, float] = {}
            for quantile, key in (
                ("p50", "p50_ms"),
                ("p90", "p90_ms"),
                ("p99", "p99_ms"),
            ):
                value = cell.get(key)
                if value:
                    values[quantile] = float(value)
            if "p50" not in values and cell.get("median_ms") is not None:
                # Documents written before histograms existed.
                values["p50"] = float(cell["median_ms"])
            # Budget bookkeeping (not quantiles — diff_documents reads
            # these two directly): the baseline side contributes its
            # ms/node ceiling, the candidate side its measured ms/node.
            if cell.get("budget_ms_per_node") is not None:
                values["budget_ms_per_node"] = float(
                    cell["budget_ms_per_node"]
                )
            if cell.get("median_ms_per_node") is not None:
                values["ms_per_node"] = float(cell["median_ms_per_node"])
            if values:
                # Mode-tagged cells (pushdown / bfs / native) gate each
                # closure strategy separately; documents written before
                # the tag existed collapse to the legacy "closure" mode.
                mode = str(cell.get("mode") or "closure")
                out[(backend, str(op_id), mode)] = values
    return out


def _resultset_cells(document: Dict[str, Any]) -> Dict[Tuple[str, str, str], Dict[str, float]]:
    """(backend, op, mode) -> quantile values, for ResultSet documents."""
    out: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for result in document.get("results", []):
        backend = f"{result['backend']}-L{result['level']}"
        for mode in ("cold", "warm"):
            hist = result.get(f"{mode}_hist") or {}
            values = {
                quantile: float(hist[quantile])
                for quantile in ("p50", "p90", "p99")
                if hist.get(quantile) is not None
            }
            if not values:
                # Pre-histogram documents: fall back to the mean.
                stats = result.get(mode) or {}
                if stats.get("mean") is not None:
                    values["p50"] = float(stats["mean"])
            if values:
                out[(backend, str(result["op_id"]), mode)] = values
    return out


def extract_cells(
    document: Dict[str, Any]
) -> Dict[Tuple[str, str, str], Dict[str, float]]:
    """Normalize either document shape to (backend, op, mode) cells."""
    if "results" in document:
        return _resultset_cells(document)
    if "cells" in document:
        return _closure_cells(document)
    raise ValueError(
        "unrecognized benchmark document: expected a 'cells' "
        "(closure bench) or 'results' (ResultSet) key"
    )


def diff_documents(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    thresholds: Optional[Dict[str, float]] = None,
    absolute_floor_ms: float = ABSOLUTE_FLOOR_MS,
) -> List[DiffRow]:
    """Compare two documents; one row per shared quantile cell.

    Cells present on only one side are skipped (adding a backend or an
    operation is not a regression).  A row regresses when the relative
    change exceeds its quantile's threshold *and* at least one side is
    above ``absolute_floor_ms``.

    A baseline cell carrying ``budget_ms_per_node`` additionally
    yields a ``budget`` row: the candidate's ``median_ms_per_node``
    against the absolute ceiling, regressing whenever it is exceeded
    (no relative threshold, no floor).
    """
    thresholds = thresholds or DEFAULT_THRESHOLDS
    base_cells = extract_cells(baseline)
    cand_cells = extract_cells(candidate)
    rows: List[DiffRow] = []
    for key in sorted(set(base_cells) & set(cand_cells)):
        backend, op_id, mode = key
        base_values = base_cells[key]
        cand_values = cand_cells[key]
        for quantile, threshold in thresholds.items():
            if quantile not in base_values or quantile not in cand_values:
                continue
            old = base_values[quantile]
            new = cand_values[quantile]
            change = (new - old) / old if old else (float("inf") if new else 0.0)
            below_floor = old < absolute_floor_ms and new < absolute_floor_ms
            regressed = change > threshold and not below_floor
            rows.append(
                DiffRow(
                    backend=backend,
                    op_id=op_id,
                    mode=mode,
                    quantile=quantile,
                    baseline_ms=old,
                    candidate_ms=new,
                    change=change,
                    threshold=threshold,
                    regressed=regressed,
                )
            )
        budget = base_values.get("budget_ms_per_node")
        per_node = cand_values.get("ms_per_node")
        if budget is not None and per_node is not None and budget > 0:
            rows.append(
                DiffRow(
                    backend=backend,
                    op_id=op_id,
                    mode=mode,
                    quantile="budget",
                    baseline_ms=budget,
                    candidate_ms=per_node,
                    change=(per_node - budget) / budget,
                    threshold=0.0,
                    regressed=per_node > budget,
                )
            )
    return rows


def regressions(rows: List[DiffRow]) -> List[DiffRow]:
    """The subset of rows that regressed."""
    return [row for row in rows if row.regressed]


def format_diff(
    rows: List[DiffRow], only_regressions: bool = False
) -> str:
    """A fixed-width table of the comparison (for the CLI)."""
    shown = regressions(rows) if only_regressions else rows
    lines = [
        f"{'cell':<42}{'baseline':>10}{'candidate':>11}"
        f"{'change':>9}{'limit':>8}  verdict"
    ]
    for row in shown:
        verdict = "REGRESSED" if row.regressed else (
            "improved" if row.change < -row.threshold else "ok"
        )
        lines.append(
            f"{row.label:<42}{row.baseline_ms:>10.4f}{row.candidate_ms:>11.4f}"
            f"{row.change:>+9.0%}{row.threshold:>+8.0%}  {verdict}"
        )
    bad = regressions(rows)
    lines.append(
        f"{len(rows)} cells compared, {len(bad)} regression"
        f"{'' if len(bad) == 1 else 's'}"
    )
    return "\n".join(lines)


#: Headroom the ratchet leaves above a refreshed cell's measured
#: ms/node when deriving its new budget: 50 % absorbs honest run-to-run
#: noise while still catching a real regression of the same size the
#: refresh banked.
BUDGET_HEADROOM = 0.50


def refresh_improvements(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    thresholds: Optional[Dict[str, float]] = None,
    budget_headroom: float = BUDGET_HEADROOM,
) -> Tuple[Dict[str, Any], List[str]]:
    """Ratchet the baseline forward where the candidate clearly won.

    A shared closure cell whose candidate p50 beats the baseline's by
    *more than the p50 regression threshold* (a symmetric bar: the
    improvement must be as unambiguous as a regression would be) is
    replaced wholesale with the candidate's measurements.  Each
    replaced cell gets a fresh ``budget_ms_per_node`` of its new
    ``median_ms_per_node`` plus ``budget_headroom`` — never *looser*
    than the budget it already carried, so budgets only tighten.

    Cells the candidate merely matched, regressed, or that exist on
    one side only are left untouched.  Returns the updated document
    and the ``backend/op`` labels that moved; when nothing moved the
    document is an unmodified deep copy.
    """
    if "cells" not in baseline or "cells" not in candidate:
        raise ValueError(
            "improvement refresh needs two closure 'cells' documents"
        )
    thresholds = thresholds or DEFAULT_THRESHOLDS
    bar = thresholds.get("p50", DEFAULT_THRESHOLDS["p50"])
    updated = copy.deepcopy(baseline)
    replaced: List[str] = []
    for backend, per_op in candidate["cells"].items():
        base_per_op = updated["cells"].get(backend)
        if base_per_op is None:
            continue
        for op_id, cell in per_op.items():
            base_cell = base_per_op.get(op_id)
            if base_cell is None:
                continue
            old = float(
                base_cell.get("p50_ms") or base_cell.get("median_ms") or 0.0
            )
            new = float(cell.get("p50_ms") or cell.get("median_ms") or 0.0)
            if not old or not new or new >= old * (1.0 - bar):
                continue
            fresh = dict(cell)
            budget = round(
                float(cell["median_ms_per_node"]) * (1.0 + budget_headroom),
                6,
            )
            previous_budget = base_cell.get("budget_ms_per_node")
            if previous_budget is not None:
                budget = min(budget, float(previous_budget))
            fresh["budget_ms_per_node"] = budget
            base_per_op[op_id] = fresh
            replaced.append(f"{backend}/{op_id}")
    if replaced:
        updated["ratchet"] = {
            "refreshed_cells": replaced,
            "provenance": candidate.get("provenance"),
        }
    return updated, replaced


def load_document(path: str) -> Dict[str, Any]:
    """Read one benchmark JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_document(path: str, document: Dict[str, Any]) -> None:
    """Write one benchmark JSON document (sorted keys, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def diff_files(
    baseline_path: str,
    candidate_path: str,
    thresholds: Optional[Dict[str, float]] = None,
) -> Tuple[List[DiffRow], int]:
    """Diff two files; returns (rows, exit_code) — 1 when regressed."""
    rows = diff_documents(
        load_document(baseline_path),
        load_document(candidate_path),
        thresholds=thresholds,
    )
    return rows, (1 if regressions(rows) else 0)
