"""Result collection and JSON persistence.

A :class:`ResultSet` accumulates :class:`~repro.harness.protocol.ColdWarmResult`
records across backends, levels and operations, supports selection and
grouping for the report tables, and round-trips to JSON so EXPERIMENTS.md
figures can be regenerated from saved runs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

from repro.harness.protocol import ColdWarmResult


class ResultSet:
    """An ordered collection of benchmark results."""

    def __init__(self, results: Optional[Iterable[ColdWarmResult]] = None) -> None:
        self._results: List[ColdWarmResult] = list(results or [])

    def add(self, result: ColdWarmResult) -> None:
        """Append one result."""
        self._results.append(result)

    def extend(self, results: Iterable[ColdWarmResult]) -> None:
        """Append many results."""
        self._results.extend(results)

    def __iter__(self) -> Iterator[ColdWarmResult]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(
        self,
        backend: Optional[str] = None,
        level: Optional[int] = None,
        op_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> "ResultSet":
        """Filter by any combination of backend, level, op and category."""
        selected = [
            r
            for r in self._results
            if (backend is None or r.backend == backend)
            and (level is None or r.level == level)
            and (op_id is None or r.op_id == op_id)
            and (category is None or r.category == category)
        ]
        return ResultSet(selected)

    def one(self, backend: str, level: int, op_id: str) -> ColdWarmResult:
        """The unique result for one cell of the grid.

        Raises:
            KeyError: if the cell is missing or ambiguous.
        """
        matches = list(self.select(backend=backend, level=level, op_id=op_id))
        if len(matches) != 1:
            raise KeyError(
                f"expected one result for ({backend}, {level}, {op_id}), "
                f"found {len(matches)}"
            )
        return matches[0]

    @property
    def backends(self) -> List[str]:
        """Distinct backends in first-seen order."""
        return self._distinct(lambda r: r.backend)

    @property
    def levels(self) -> List[int]:
        """Distinct levels, ascending."""
        return sorted(set(r.level for r in self._results))

    @property
    def op_ids(self) -> List[str]:
        """Distinct operation ids in first-seen order."""
        return self._distinct(lambda r: r.op_id)

    @property
    def categories(self) -> List[str]:
        """Distinct categories in first-seen order."""
        return self._distinct(lambda r: r.category)

    def _distinct(self, key) -> list:
        seen: Dict = {}
        for result in self._results:
            seen.setdefault(key(result), None)
        return list(seen)

    def counter_names(self) -> List[str]:
        """Every instrumentation counter observed in any result, sorted.

        Empty when the runs were made with the no-op instrumentation.
        """
        names = set()
        for result in self._results:
            names.update(result.cold_counters)
            names.update(result.warm_counters)
        return sorted(names)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize all results to a JSON document.

        The document carries a :func:`~repro.harness.provenance.provenance`
        header (git SHA, python, platform, timestamp, grid shape) so a
        saved run is attributable; :meth:`from_json` ignores it.
        """
        from repro.harness.provenance import provenance

        return json.dumps(
            {
                "provenance": provenance(
                    backends=self.backends,
                    levels=self.levels,
                    op_ids=self.op_ids,
                ),
                "results": [r.to_dict() for r in self._results],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Load a result set from :meth:`to_json` output."""
        raw = json.loads(text)
        return cls(ColdWarmResult.from_dict(r) for r in raw["results"])

    def save(self, path: str) -> None:
        """Write the result set to a JSON file."""
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ResultSet":
        """Read a result set from a JSON file."""
        with open(path) as f:
            return cls.from_json(f.read())
