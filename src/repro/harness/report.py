"""Paper-style plain-text result tables.

Three table shapes cover everything the reproduction reports:

* :func:`operation_table` — one backend, rows = operations, columns =
  cold/warm milliseconds-per-node for each level (the layout of the
  companion results report /ANDE89/);
* :func:`backend_comparison_table` — one level and run temperature,
  rows = operations, columns = backends (who wins, by what factor);
* :func:`creation_table` — the section 5.3 creation phases.

:func:`counter_table` adds the observability dimension: per-operation
instrumentation counter deltas (buffer hits, RPC round trips, WAL
bytes, ...) for one backend/level/temperature — the "why" next to the
"how fast".  The :data:`~repro.obs.HEADLINE_COUNTERS` are always
printed, even at zero, so tables from different backends align.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.harness.results import ResultSet
from repro.obs import HEADLINE_COUNTERS


def _format_ms(value: float) -> str:
    if value >= 100:
        return f"{value:8.1f}"
    if value >= 1:
        return f"{value:8.2f}"
    return f"{value:8.4f}"


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        _rule(widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def operation_table(results: ResultSet, backend: str) -> str:
    """Cold/warm ms-per-node per operation and level for one backend."""
    subset = results.select(backend=backend)
    levels = subset.levels
    headers = ["op"] + [
        f"L{level} {temp}" for level in levels for temp in ("cold", "warm")
    ]
    rows: List[List[str]] = []
    for op_id in subset.op_ids:
        row = [f"{op_id} {subset.select(op_id=op_id)._results[0].op_name}"]
        for level in levels:
            try:
                cell = subset.one(backend, level, op_id)
            except KeyError:
                row += ["-", "-"]
                continue
            row.append(_format_ms(cell.cold.mean).strip())
            row.append(_format_ms(cell.warm.mean).strip())
        rows.append(row)
    title = f"Backend: {backend}  (milliseconds per node, mean over repetitions)"
    return title + "\n" + _table(headers, rows)


def backend_comparison_table(
    results: ResultSet, level: int, temperature: str = "cold"
) -> str:
    """Operations x backends for one level and run temperature."""
    if temperature not in ("cold", "warm"):
        raise ValueError("temperature must be 'cold' or 'warm'")
    subset = results.select(level=level)
    backends = subset.backends
    headers = ["op"] + backends
    rows: List[List[str]] = []
    for op_id in subset.op_ids:
        row = [f"{op_id} {subset.select(op_id=op_id)._results[0].op_name}"]
        for backend in backends:
            try:
                cell = subset.one(backend, level, op_id)
            except KeyError:
                row.append("-")
                continue
            stats = cell.cold if temperature == "cold" else cell.warm
            row.append(_format_ms(stats.mean).strip())
        rows.append(row)
    title = (
        f"Level {level}, {temperature} run  (milliseconds per node, mean)"
    )
    return title + "\n" + _table(headers, rows)


def speedup_table(results: ResultSet, backend: str) -> str:
    """Warm-over-cold speedup per operation and level (cache effect)."""
    subset = results.select(backend=backend)
    levels = subset.levels
    headers = ["op"] + [f"L{level} speedup" for level in levels]
    rows: List[List[str]] = []
    for op_id in subset.op_ids:
        row = [f"{op_id} {subset.select(op_id=op_id)._results[0].op_name}"]
        for level in levels:
            try:
                cell = subset.one(backend, level, op_id)
            except KeyError:
                row.append("-")
                continue
            row.append(f"{cell.warm_speedup:6.1f}x")
        rows.append(row)
    title = f"Backend: {backend}  (cold mean / warm mean)"
    return title + "\n" + _table(headers, rows)


def _format_count(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def counter_table(
    results: ResultSet,
    backend: str,
    level: Optional[int] = None,
    temperature: str = "cold",
) -> str:
    """Instrumentation counter deltas per operation for one backend.

    Rows are counter names — the :data:`~repro.obs.HEADLINE_COUNTERS`
    first (printed even when zero), then every other counter observed,
    sorted.  Columns are operations; each cell is the counter's delta
    over that operation's 50-repetition run.
    """
    if temperature not in ("cold", "warm"):
        raise ValueError("temperature must be 'cold' or 'warm'")
    subset = results.select(backend=backend, level=level)
    op_ids = subset.op_ids
    deltas: Dict[str, Dict[str, float]] = {}
    for op_id in op_ids:
        cell = subset.select(op_id=op_id)._results[0]
        deltas[op_id] = (
            cell.cold_counters if temperature == "cold" else cell.warm_counters
        )
    names: List[str] = list(HEADLINE_COUNTERS)
    observed = sorted(
        {name for delta in deltas.values() for name in delta}
        - set(HEADLINE_COUNTERS)
    )
    names.extend(observed)
    headers = ["counter"] + op_ids
    rows = [
        [name]
        + [_format_count(deltas[op_id].get(name, 0)) for op_id in op_ids]
        for name in names
    ]
    scope = f", level {level}" if level is not None else ""
    title = (
        f"Counters: {backend}{scope}, {temperature} run "
        f"(delta over the repetitions)"
    )
    return title + "\n" + _table(headers, rows)


#: The histogram-summary columns every percentile table prints.
_PERCENTILE_COLUMNS = ("p50", "p90", "p99", "max")


def percentile_table(
    results: ResultSet,
    backend: str,
    level: Optional[int] = None,
    temperature: str = "cold",
) -> str:
    """Latency-percentile summaries per operation for one backend.

    Rows are operations; columns are the log-bucketed histogram
    summary quantiles (p50/p90/p99/max, ms per node) of the
    ``temperature`` pass — the distributional view Darmont's OODB
    benchmark survey asks for next to the mean-only tables.
    Results saved before histograms existed print ``-``.
    """
    if temperature not in ("cold", "warm"):
        raise ValueError("temperature must be 'cold' or 'warm'")
    subset = results.select(backend=backend, level=level)
    headers = ["op"] + list(_PERCENTILE_COLUMNS)
    rows: List[List[str]] = []
    for op_id in subset.op_ids:
        cell = subset.select(op_id=op_id)._results[0]
        hist = cell.cold_hist if temperature == "cold" else cell.warm_hist
        row = [f"{op_id} {cell.op_name}"]
        for column in _PERCENTILE_COLUMNS:
            value = hist.get(column)
            row.append("-" if value is None else _format_ms(value).strip())
        rows.append(row)
    scope = f", level {level}" if level is not None else ""
    title = (
        f"Latency percentiles: {backend}{scope}, {temperature} run "
        f"(ms per node)"
    )
    return title + "\n" + _table(headers, rows)


def creation_table(
    phases_by_backend: Dict[str, Dict[str, float]], level: int
) -> str:
    """Creation phases (ms per node / per relationship) per backend."""
    backends = list(phases_by_backend)
    phase_names: List[str] = []
    for phases in phases_by_backend.values():
        for name in phases:
            if name not in phase_names:
                phase_names.append(name)
    headers = ["phase"] + backends
    rows = [
        [name]
        + [
            _format_ms(phases_by_backend[b].get(name, float("nan"))).strip()
            if name in phases_by_backend[b]
            else "-"
            for b in backends
        ]
        for name in phase_names
    ]
    title = f"Database creation, level {level}  (milliseconds per item)"
    return title + "\n" + _table(headers, rows)


def delta_table(
    baseline: ResultSet,
    candidate: ResultSet,
    temperature: str = "cold",
    threshold: float = 0.10,
) -> str:
    """Compare two result sets cell by cell (regression tracking).

    For every (backend, level, op) present in both sets, prints the
    baseline and candidate means and the relative change; changes whose
    magnitude exceeds ``threshold`` are flagged.
    """
    if temperature not in ("cold", "warm"):
        raise ValueError("temperature must be 'cold' or 'warm'")
    headers = ["backend/level/op", "baseline", "candidate", "change", ""]
    rows: List[List[str]] = []
    for result in baseline:
        try:
            other = candidate.one(result.backend, result.level, result.op_id)
        except KeyError:
            continue
        old = (result.cold if temperature == "cold" else result.warm).mean
        new = (other.cold if temperature == "cold" else other.warm).mean
        change = (new - old) / old if old else float("inf")
        flag = ""
        if abs(change) > threshold:
            flag = "SLOWER" if change > 0 else "faster"
        rows.append(
            [
                f"{result.backend} L{result.level} {result.op_id}",
                _format_ms(old).strip(),
                _format_ms(new).strip(),
                f"{change:+.0%}",
                flag,
            ]
        )
    title = (
        f"Baseline vs candidate, {temperature} means "
        f"(flagged beyond ±{threshold:.0%})"
    )
    return title + "\n" + _table(headers, rows)


def full_report(
    results: ResultSet,
    title: Optional[str] = None,
    include_counters: bool = False,
    include_percentiles: bool = False,
) -> str:
    """Every operation table plus per-level comparisons, concatenated.

    With ``include_counters=True`` a cold-run :func:`counter_table` per
    backend and level is appended (``repro bench --counters``); with
    ``include_percentiles=True`` a cold-run :func:`percentile_table`
    per backend and level too (``repro bench``).
    """
    sections: List[str] = []
    if title:
        sections.append(title)
        sections.append("=" * len(title))
    for backend in results.backends:
        sections.append(operation_table(results, backend))
        sections.append("")
    for level in results.levels:
        sections.append(backend_comparison_table(results, level, "cold"))
        sections.append("")
        sections.append(backend_comparison_table(results, level, "warm"))
        sections.append("")
    if include_percentiles:
        for backend in results.backends:
            for level in results.select(backend=backend).levels:
                sections.append(
                    percentile_table(results, backend, level, "cold")
                )
                sections.append("")
    if include_counters:
        for backend in results.backends:
            for level in results.select(backend=backend).levels:
                sections.append(counter_table(results, backend, level, "cold"))
                sections.append("")
    return "\n".join(sections)
