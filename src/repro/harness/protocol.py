"""The section 5.3 operation-sequence protocol.

For each benchmark operation the paper prescribes:

  (a) choose the inputs (random nodes/values; op 17 reuses one form
      node for all repetitions),
  (b) run the operation 50 times — the **cold run** (the database was
      just opened, so caches start empty),
  (c) **commit** the changes,
  (d) repeat the same 50 inputs — the **warm run** (measuring caching),
  (e) **close** the database so this sequence cannot warm the next one.

Each repetition is timed individually (wall clock plus any simulated
network time) and normalized to **milliseconds per node** using the
operation's result size, exactly as section 6 specifies.  The commit
after the cold run is timed separately and reported alongside.

Input preparation happens after the reopen but outside the timed
region: the paper passes "a random node" (a reference) as input, so
resolving a uniqueId to a reference is preparation, not measurement.
The closure operations' output lists are stored back into the database
once per sequence (untimed) to exercise the paper's "the list should be
storable" requirement.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional

from repro.core.config import HyperModelConfig
from repro.core.generator import GeneratedDatabase
from repro.core.interface import HyperModelDatabase
from repro.core.operations import OperationSpec, Operations
from repro.harness.timing import Stats, Timer
from repro.obs import NO_OP, Instrumentation, LatencyHistogram

#: The paper's repetition count per run.
DEFAULT_REPETITIONS = 50


@dataclasses.dataclass
class ColdWarmResult:
    """Measurements of one operation sequence on one database.

    All ``Stats`` are in **milliseconds per node** over the
    repetitions; ``cold_total_seconds`` / ``warm_total_seconds``
    include everything, and ``commit_seconds`` is the cost of the
    commit between the runs.

    ``cold_counters`` / ``warm_counters`` are instrumentation counter
    *deltas* over the corresponding run (what the 50 repetitions did,
    not absolute totals); empty when the backend runs with the no-op
    instrumentation.  The between-run commit is excluded from both:
    the harness calls ``Instrumentation.reset()`` after the cold delta
    is captured, so warm counters, histograms and spans describe the
    warm pass alone.

    ``cold_hist`` / ``warm_hist`` are log-bucketed latency-histogram
    summaries (count/mean/min/max/p50/p90/p99, in **ms per node**)
    over the same per-repetition samples the ``Stats`` summarize —
    the distributional view mean-only tables hide.  Always present
    (they are built from the timing samples, not the backend's
    instrumentation).
    """

    op_id: str
    op_name: str
    category: str
    backend: str
    level: int
    repetitions: int
    cold: Stats
    warm: Stats
    commit_seconds: float
    cold_total_seconds: float
    warm_total_seconds: float
    nodes_per_repetition: float
    cold_counters: Dict[str, float] = dataclasses.field(default_factory=dict)
    warm_counters: Dict[str, float] = dataclasses.field(default_factory=dict)
    cold_hist: Dict[str, float] = dataclasses.field(default_factory=dict)
    warm_hist: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def warm_speedup(self) -> float:
        """cold mean / warm mean (how much caching helped)."""
        return self.cold.mean / self.warm.mean if self.warm.mean else float("inf")

    def to_dict(self) -> dict:
        """Serializable form."""
        raw = dataclasses.asdict(self)
        raw["cold"] = self.cold.to_dict()
        raw["warm"] = self.warm.to_dict()
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "ColdWarmResult":
        """Rebuild from :meth:`to_dict` output.

        Tolerates documents written before counter capture existed:
        missing counter keys load as empty deltas.
        """
        raw = dict(raw)
        raw["cold"] = Stats.from_dict(raw["cold"])
        raw["warm"] = Stats.from_dict(raw["warm"])
        raw.setdefault("cold_counters", {})
        raw.setdefault("warm_counters", {})
        raw.setdefault("cold_hist", {})
        raw.setdefault("warm_hist", {})
        return cls(**raw)


def _reopen_cold(db: HyperModelDatabase) -> None:
    """Section 5.3(e)/(a): close and reopen so caches start empty."""
    if db.is_open:
        db.commit()
        db.close()
    db.open()


def _prepare_inputs(
    spec: OperationSpec,
    gen: GeneratedDatabase,
    rng: random.Random,
    db: HyperModelDatabase,
    repetitions: int,
) -> List[tuple]:
    if spec.same_input_every_repetition:
        single = spec.make_input(gen, rng, db)
        return [single] * repetitions
    return [spec.make_input(gen, rng, db) for _ in range(repetitions)]


def _timed_run(
    spec: OperationSpec,
    ops: Operations,
    inputs: List[tuple],
    gen: GeneratedDatabase,
    clock: Optional[object],
    instr: Instrumentation = NO_OP,
    temperature: str = "cold",
) -> tuple:
    """Run all repetitions; returns (ms-per-node samples, total s, sizes).

    Each repetition's latency also lands in the per-pass
    ``harness.iteration.<temperature>`` histogram (ms per repetition) —
    the hot-seam distributional record next to the engine and RPC
    seam histograms.
    """
    per_node_ms: List[float] = []
    total = 0.0
    sizes: List[int] = []
    last_result: Any = None
    hist_name = f"harness.iteration.{temperature}"
    for args in inputs:
        timer = Timer(clock)
        with timer:
            last_result = spec.run(ops, args)
        size = spec.result_size(last_result, gen)
        sizes.append(size)
        per_node_ms.append(timer.elapsed * 1000.0 / size)
        total += timer.elapsed
        instr.observe(hist_name, timer.elapsed * 1000.0)
    return per_node_ms, total, sizes, last_result


def run_operation_sequence(
    db: HyperModelDatabase,
    spec: OperationSpec,
    gen: GeneratedDatabase,
    config: Optional[HyperModelConfig] = None,
    repetitions: int = DEFAULT_REPETITIONS,
    seed: int = 0,
    store_result_list: bool = True,
) -> ColdWarmResult:
    """Execute one full cold/warm sequence for one operation.

    Args:
        db: the populated backend (open or closed; it is cycled).
        spec: which operation to run.
        gen: generation metadata (for input picking and normalization).
        config: benchmark configuration (defaults to ``gen.config``).
        repetitions: runs per cold and warm pass (paper: 50).
        seed: input-selection seed (distinct per op via the runner).
        store_result_list: store one closure result list back into the
            database after the timed runs (capability exercise).

    Returns:
        A :class:`ColdWarmResult` with ms-per-node statistics.
    """
    config = config or gen.config
    rng = random.Random((seed * 1_000_003) ^ hash(spec.op_id))
    clock = getattr(db, "simulated_clock", None)
    instr: Instrumentation = getattr(db, "instrumentation", NO_OP) or NO_OP

    # (a) fresh open, then input preparation (untimed).
    _reopen_cold(db)
    ops = Operations(db, config)
    inputs = _prepare_inputs(spec, gen, rng, db, repetitions)

    # (b) cold run, with a counter snapshot around it.
    before_cold = instr.snapshot()
    cold_ms, cold_total, sizes, last_result = _timed_run(
        spec, ops, inputs, gen, clock, instr, "cold"
    )
    cold_counters = instr.snapshot().delta(before_cold)

    # (c) commit, timed separately (its counters belong to neither run).
    commit_timer = Timer(clock)
    with commit_timer:
        db.commit()

    # Pinned contract: reset() atomically clears counters, histograms
    # and the span ring between the passes, so warm-pass measurements
    # (and spans — sequence numbers stay monotonic across the reset)
    # never alias cold-pass state.  The between-run commit's activity
    # is wiped with it, keeping it out of both passes.
    instr.reset()

    # (d) warm run with the same inputs.
    before_warm = instr.snapshot()
    warm_ms, warm_total, _sizes, last_result = _timed_run(
        spec, ops, inputs, gen, clock, instr, "warm"
    )
    warm_counters = instr.snapshot().delta(before_warm)

    # Exercise result-list storability (untimed; closures return lists).
    if store_result_list and isinstance(last_result, list) and last_result:
        refs = [
            item[0] if isinstance(item, tuple) else item for item in last_result
        ]
        try:
            db.store_node_list(f"result.{spec.op_id}", refs)
        except Exception:
            pass  # lists of non-refs (e.g. ranges of plain values) are fine to skip

    # (e) close, so the next sequence starts cold.
    db.commit()
    db.close()

    return ColdWarmResult(
        op_id=spec.op_id,
        op_name=spec.name,
        category=spec.category,
        backend=db.backend_name,
        level=config.levels,
        repetitions=repetitions,
        cold=Stats.from_samples(cold_ms),
        warm=Stats.from_samples(warm_ms),
        commit_seconds=commit_timer.elapsed,
        cold_total_seconds=cold_total,
        warm_total_seconds=warm_total,
        nodes_per_repetition=sum(sizes) / len(sizes),
        cold_counters=cold_counters,
        warm_counters=warm_counters,
        cold_hist=LatencyHistogram.from_samples(cold_ms).summary(),
        warm_hist=LatencyHistogram.from_samples(warm_ms).summary(),
    )


def measure_creation(
    db: HyperModelDatabase,
    config: HyperModelConfig,
    structure_id: int = 1,
) -> "tuple":
    """Generate a structure, returning (GeneratedDatabase, per-phase ms).

    Used by the creation benchmark (section 5.3 operations a-d): the
    generator itself measures each phase with its commit.
    """
    from repro.core.generator import DatabaseGenerator

    if not db.is_open:
        db.open()
    gen = DatabaseGenerator(config).generate(db, structure_id=structure_id)
    phases = {}
    phases.update(
        {f"node-{k}": v for k, v in gen.stats.per_node_ms().items()}
    )
    phases.update(
        {f"rel-{k}": v for k, v in gen.stats.per_relationship_ms().items()}
    )
    return gen, phases
