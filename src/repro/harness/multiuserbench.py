"""The multi-user grid benchmark behind ``BENCH_multiuser.json``.

The paper's section 7 stops at "we have done some experiments with
multi-user aspects"; this module runs the experiment the authors
sketched, deterministically.  A clients × conflict-rate grid of
optimistic transaction loads runs on the discrete-event scheduler
(:class:`~repro.concurrency.multiuser.MultiUserHarness`): every cell
gets a fresh :class:`~repro.netsim.server.ObjectServer` seeded with
the *same* generated structure and a write-ahead log in group-commit
mode, so the numbers answer three questions at once:

* **saturation** — committed transactions per simulated second rises
  with the client count, then flattens at the server's service rate
  (the closed-queueing-network ceiling ``min(N/(Z+D), 1/D)``);
* **contention** — the optimistic abort rate is exactly zero in the
  ``conflict 0.0`` control column and grows with client count in the
  hot-set columns;
* **durability cost** — a side-by-side WAL comparison at the largest
  client count shows group commit amortizing fsyncs across
  near-simultaneous commits (``fsyncs_per_commit`` drops from 1.0
  toward ``1 / group_commit_size``).

All times are *virtual*: the document is a pure function of the seed
and the grid, byte-identical across machines, which is why CI can diff
it against a committed baseline with ``repro bench-diff`` (cells carry
the same ``p50_ms``/``p90_ms``/``p99_ms`` + ``mode`` shape as the
closure benchmark).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator, GeneratedDatabase
from repro.engine.wal import WriteAheadLog
from repro.harness.provenance import provenance
from repro.netsim.config import NetworkConfig, SimConfig
from repro.netsim.latency import LatencyModel
from repro.netsim.server import ObjectServer
from repro.obs import FlightRecorder, Instrumentation, LatencyHistogram

#: Default grid: client counts × conflict probabilities.
DEFAULT_CLIENTS = (1, 2, 4, 8)
DEFAULT_CONFLICT_RATES = (0.0, 0.2)


@dataclasses.dataclass
class MultiUserCell:
    """One (clients, conflict-rate) grid cell.

    ``p50_ms``/``p90_ms``/``p99_ms`` summarize per-transaction virtual
    latency (begin to successful commit, retries included) through a
    log-bucketed histogram whose full bucket form rides in
    ``histogram``; ``mode`` is always ``"multiuser"`` so
    ``repro bench-diff`` gates these cells separately from the closure
    benchmark's.
    """

    clients: int
    conflict_rate: float
    transactions: int
    committed: int
    aborted: int
    giveups: int
    retries: int
    abort_rate: float
    throughput_per_s: float
    makespan_s: float
    p50_ms: float = 0.0
    p90_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    histogram: Dict[str, object] = dataclasses.field(default_factory=dict)
    queue_s: float = 0.0
    busy_s: float = 0.0
    server_commits: int = 0
    server_conflicts: int = 0
    wal_syncs: int = 0
    fsyncs_per_commit: float = 0.0
    mode: str = "multiuser"

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _generate_structure(
    level: int, seed: int
) -> "tuple[GeneratedDatabase, Dict[int, Dict[str, Any]]]":
    """Generate the shared structure once; return (gen, record dump)."""
    from repro.backends.clientserver import ClientServerDatabase

    server = ObjectServer(latency=LatencyModel())
    loader = ClientServerDatabase(server=server)
    loader.open()
    gen = DatabaseGenerator(
        HyperModelConfig(levels=level, seed=seed)
    ).generate(loader)
    loader.commit()
    loader.close()
    return gen, server.export_records()


def _fresh_server(
    records: Dict[int, Dict[str, Any]],
    wal: Optional[WriteAheadLog],
    sim: SimConfig,
    instrumentation: Optional[Instrumentation] = None,
) -> ObjectServer:
    server = ObjectServer(
        latency=LatencyModel(),
        instrumentation=instrumentation,
        wal=wal,
        fsync_seconds=sim.fsync_seconds,
    )
    server.load_records(records)
    return server


def _run_cell(
    gen: GeneratedDatabase,
    records: Dict[int, Dict[str, Any]],
    wal: Optional[WriteAheadLog],
    clients: int,
    conflict_rate: float,
    transactions_per_client: int,
    reads_per_txn: int,
    hot_set_size: int,
    seed: int,
    sim: SimConfig,
    instrumentation: Optional[Instrumentation] = None,
    recorder: Optional[FlightRecorder] = None,
    sample_cadence_seconds: float = 0.0,
    sample_label: Optional[str] = None,
) -> MultiUserCell:
    from repro.concurrency.multiuser import MultiUserHarness

    server = _fresh_server(records, wal, sim, instrumentation)
    harness = MultiUserHarness(
        server,
        gen,
        users=clients,
        seed=seed,
        network=NetworkConfig(concurrency="optimistic"),
        sim=sim,
        instrumentation=instrumentation,
        recorder=recorder,
        sample_cadence_seconds=sample_cadence_seconds,
        sample_label=sample_label,
    )
    result = harness.run_transactions(
        transactions_per_user=transactions_per_client,
        reads_per_txn=reads_per_txn,
        conflict_rate=conflict_rate,
        hot_set_size=hot_set_size,
    )
    # Fleet distribution by *merging* per-client histograms — the
    # aggregation path a sharded fleet would use.  Bucket addition is
    # exact, so this equals from_samples(pooled) bit for bit (pinned
    # by tests/test_histograms.py) and the baseline-gated cells are
    # unchanged.
    hist = LatencyHistogram()
    for client_latencies in result.per_user_latencies_ms:
        hist.merge(LatencyHistogram.from_samples(client_latencies))
    return MultiUserCell(
        clients=clients,
        conflict_rate=conflict_rate,
        transactions=clients * transactions_per_client,
        committed=result.committed,
        aborted=result.aborted,
        giveups=result.giveups,
        retries=result.retries,
        abort_rate=round(result.abort_rate, 6),
        throughput_per_s=round(result.throughput_per_second, 4),
        makespan_s=round(result.makespan_seconds, 6),
        p50_ms=round(hist.percentile(0.50), 4),
        p90_ms=round(hist.percentile(0.90), 4),
        p99_ms=round(hist.percentile(0.99), 4),
        max_ms=round(hist.maximum, 4),
        histogram=hist.to_dict(),
        queue_s=round(result.queue_seconds, 6),
        busy_s=round(result.busy_seconds, 6),
        server_commits=result.server_commits,
        server_conflicts=result.server_conflicts,
        wal_syncs=result.wal_syncs,
        fsyncs_per_commit=round(result.fsyncs_per_commit, 6),
    )


def run_multiuser_bench(
    clients: Sequence[int] = DEFAULT_CLIENTS,
    conflict_rates: Sequence[float] = DEFAULT_CONFLICT_RATES,
    level: int = 3,
    transactions_per_client: int = 8,
    reads_per_txn: int = 4,
    hot_set_size: int = 8,
    seed: int = 1989,
    group_commit_size: int = 8,
    workdir: Optional[str] = None,
    instrumentation: Optional[Instrumentation] = None,
    timeline: Optional[str] = None,
    timeline_cadence_seconds: float = 0.02,
) -> Dict[str, object]:
    """Run the clients × conflict grid; return the JSON document.

    The structure is generated once (level ``level``, seed ``seed``)
    and replayed into a fresh server per cell, so cells are
    independent and the grid order does not matter.  Every grid cell
    runs with a group-commit WAL; the extra ``wal`` section re-runs
    the largest client count at conflict 0.0 with per-commit fsyncs
    versus group commit, which is the "group commit measurably reduces
    fsyncs per commit" evidence.

    ``timeline`` writes a flight-recorder JSONL to that path: every
    cell is sampled on the virtual clock each
    ``timeline_cadence_seconds``, with the cell's grid coordinates as
    the sample label.  The samples are a pure function of the seed
    (byte-identical across runs) and strictly additive — the returned
    document is unchanged.  When no instrumentation handle was passed,
    a private one is created so the timeline works against an
    otherwise-disabled run.
    """
    clients = sorted(set(int(n) for n in clients))
    if not clients or clients[0] < 1:
        raise ValueError("client counts must be positive")
    conflict_rates = sorted(set(float(r) for r in conflict_rates))
    sim = SimConfig(seed=seed)
    recorder = None
    cadence = 0.0
    if timeline is not None:
        if instrumentation is None:
            instrumentation = Instrumentation()
        recorder = FlightRecorder(
            instrumentation, capacity=65536, clock="virtual"
        )
        cadence = timeline_cadence_seconds
    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="hypermodel-mp-")
        workdir = own_tmp.name
    try:
        gen, records = _generate_structure(level, seed)
        cells: Dict[str, Dict[str, Dict[str, object]]] = {}
        for n in clients:
            row: Dict[str, Dict[str, object]] = {}
            for rate in conflict_rates:
                wal = WriteAheadLog(
                    os.path.join(workdir, f"mp-{n}-{rate}.wal"),
                    sync_on_commit=False,
                    group_commit=True,
                    group_commit_size=group_commit_size,
                )
                try:
                    cell = _run_cell(
                        gen,
                        records,
                        wal,
                        n,
                        rate,
                        transactions_per_client,
                        reads_per_txn,
                        hot_set_size,
                        seed,
                        sim,
                        instrumentation,
                        recorder=recorder,
                        sample_cadence_seconds=cadence,
                        sample_label=f"clients-{n}/conflict-{rate:g}",
                    )
                finally:
                    wal.close()
                row[f"conflict-{rate:g}"] = cell.to_json()
            cells[f"clients-{n}"] = row

        # WAL ablation: per-commit fsync vs group commit at the
        # largest client count, conflict 0.0 (clean commit stream).
        top = clients[-1]
        wal_section: Dict[str, object] = {
            "clients": top,
            "conflict_rate": 0.0,
            "group_commit_size": group_commit_size,
        }
        for label, wal_kwargs in (
            ("per_commit", {}),
            (
                "group_commit",
                {"group_commit": True, "group_commit_size": group_commit_size},
            ),
        ):
            wal = WriteAheadLog(
                os.path.join(workdir, f"mp-wal-{label}.wal"),
                sync_on_commit=False,
                **wal_kwargs,
            )
            try:
                cell = _run_cell(
                    gen,
                    records,
                    wal,
                    top,
                    0.0,
                    transactions_per_client,
                    reads_per_txn,
                    hot_set_size,
                    seed,
                    sim,
                    instrumentation,
                    recorder=recorder,
                    sample_cadence_seconds=cadence,
                    sample_label=f"wal/{label}",
                )
            finally:
                wal.close()
            wal_section[label] = {
                "fsyncs_per_commit": cell.fsyncs_per_commit,
                "wal_syncs": cell.wal_syncs,
                "server_commits": cell.server_commits,
                "throughput_per_s": cell.throughput_per_s,
                "makespan_s": cell.makespan_s,
            }
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    if recorder is not None and timeline is not None:
        recorder.write_jsonl(timeline)

    return {
        "benchmark": "multiuser",
        "level": level,
        "seed": seed,
        "clients": clients,
        "conflict_rates": conflict_rates,
        "transactions_per_client": transactions_per_client,
        "reads_per_txn": reads_per_txn,
        "hot_set_size": hot_set_size,
        "group_commit_size": group_commit_size,
        "provenance": provenance(
            clients=clients,
            conflict_rates=conflict_rates,
            level=level,
            transactions_per_client=transactions_per_client,
            seed=seed,
        ),
        "cells": cells,
        "wal": wal_section,
    }


def write_multiuser_bench(out_path: str, **kwargs: Any) -> Dict[str, object]:
    """Run :func:`run_multiuser_bench` and write ``out_path`` as JSON."""
    document = run_multiuser_bench(**kwargs)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, object]) -> str:
    """A small fixed-width table of the document (for the CLI)."""
    lines = [
        f"multi-user optimistic grid — level {document['level']}, "
        f"{document['transactions_per_client']} txns/client, "
        f"seed {document['seed']}",
        f"{'clients':>8}{'conflict':>10}{'committed':>11}{'aborted':>9}"
        f"{'abort%':>8}{'tput/s':>9}{'p50 ms':>9}{'p99 ms':>9}"
        f"{'fsync/c':>9}",
    ]
    cells = document["cells"]
    for client_key in sorted(
        cells, key=lambda k: int(k.split("-", 1)[1])
    ):  # type: ignore[union-attr]
        for rate_key in sorted(
            cells[client_key], key=lambda k: float(k.split("-", 1)[1])
        ):
            cell = cells[client_key][rate_key]
            lines.append(
                f"{cell['clients']:>8}{cell['conflict_rate']:>10.2f}"
                f"{cell['committed']:>11}{cell['aborted']:>9}"
                f"{cell['abort_rate'] * 100:>7.1f}%"
                f"{cell['throughput_per_s']:>9.1f}"
                f"{cell['p50_ms']:>9.2f}{cell['p99_ms']:>9.2f}"
                f"{cell['fsyncs_per_commit']:>9.3f}"
            )
    wal = document.get("wal") or {}
    if wal:
        per = wal.get("per_commit", {})
        grp = wal.get("group_commit", {})
        lines.append(
            f"wal @ {wal['clients']} clients: "
            f"{per.get('fsyncs_per_commit', 0):.3f} fsyncs/commit"
            f" per-commit vs {grp.get('fsyncs_per_commit', 0):.3f}"
            f" grouped (size {wal['group_commit_size']})"
        )
    return "\n".join(lines)
