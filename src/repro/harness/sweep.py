"""Level sweeps: the paper's size-scaling dimension.

The paper's tables are indexed by database level (4, 5, 6): the same
operations over 781, 3 906 and 19 531 nodes.  :class:`LevelSweep` runs
one backend across several levels and answers the scaling questions the
three-column layout exists for:

* :meth:`scaling_table` — ms/node per operation across the levels
  (an operation whose per-node cost is flat *scales*; one that grows
  is super-linear in database size);
* :func:`find_crossovers` — for two backends, the level where one
  overtakes the other on an operation, if any.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.results import ResultSet
from repro.harness.runner import BenchmarkRunner, RunnerConfig


@dataclasses.dataclass
class LevelSweep:
    """Configuration of one multi-level run."""

    backend: str
    levels: Sequence[int] = (3, 4)
    op_ids: Optional[List[str]] = None
    repetitions: int = 10
    seed: int = 19880301
    workdir: Optional[str] = None

    def run(self) -> ResultSet:
        """Execute the sweep; returns the collected results."""
        config = RunnerConfig(
            backends=[self.backend],
            levels=list(self.levels),
            op_ids=self.op_ids,
            repetitions=self.repetitions,
            seed=self.seed,
            workdir=self.workdir,
        )
        runner = BenchmarkRunner(config)
        try:
            results, _creation = runner.run()
            return results
        finally:
            runner.close()


def scaling_table(
    results: ResultSet, backend: str, temperature: str = "cold"
) -> str:
    """ms/node per op across levels, with the largest/smallest ratio.

    A ratio near 1.0 means per-node cost is independent of database
    size (the operation scales); larger ratios flag size-sensitive
    operations (e.g. unindexed range scans).
    """
    if temperature not in ("cold", "warm"):
        raise ValueError("temperature must be 'cold' or 'warm'")
    subset = results.select(backend=backend)
    levels = subset.levels
    lines = [
        f"Scaling, backend {backend}, {temperature} (ms/node per level; "
        "ratio = largest/smallest)"
    ]
    header = "op".ljust(26) + "".join(f"L{level:>2}".rjust(10) for level in levels)
    header += "ratio".rjust(9)
    lines.append(header)
    lines.append("-" * len(header))
    for op_id in subset.op_ids:
        cells = []
        for level in levels:
            try:
                result = subset.one(backend, level, op_id)
            except KeyError:
                cells.append(None)
                continue
            stats = result.cold if temperature == "cold" else result.warm
            cells.append(stats.mean)
        name = subset.select(op_id=op_id)._results[0].op_name
        row = f"{op_id} {name}".ljust(26)
        for cell in cells:
            row += (f"{cell:10.4f}" if cell is not None else "         -")
        present = [c for c in cells if c]
        ratio = max(present) / min(present) if len(present) > 1 else 1.0
        row += f"{ratio:8.1f}x"
        lines.append(row)
    return "\n".join(lines)


def per_node_series(
    results: ResultSet, backend: str, op_id: str, temperature: str = "cold"
) -> List[Tuple[int, float]]:
    """(level, ms/node) points for one backend and operation."""
    series = []
    for level in results.levels:
        try:
            cell = results.one(backend, level, op_id)
        except KeyError:
            continue
        stats = cell.cold if temperature == "cold" else cell.warm
        series.append((level, stats.mean))
    return series


def find_crossovers(
    results: ResultSet,
    backend_a: str,
    backend_b: str,
    temperature: str = "cold",
) -> Dict[str, Optional[int]]:
    """Per operation: the first level where the faster backend flips.

    Returns op_id -> level of the flip, or None when one backend wins
    at every measured level.  "Where crossovers fall" is one of the
    shape questions multi-size benchmarks exist to answer.
    """
    flips: Dict[str, Optional[int]] = {}
    for op_id in results.op_ids:
        series_a = dict(per_node_series(results, backend_a, op_id, temperature))
        series_b = dict(per_node_series(results, backend_b, op_id, temperature))
        shared = sorted(set(series_a) & set(series_b))
        if len(shared) < 2:
            continue
        first_winner = series_a[shared[0]] <= series_b[shared[0]]
        flips[op_id] = None
        for level in shared[1:]:
            winner = series_a[level] <= series_b[level]
            if winner != first_winner:
                flips[op_id] = level
                break
    return flips
