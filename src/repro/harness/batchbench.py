"""The closure micro-benchmark behind ``BENCH_closure.json``.

The batched navigation layer exists for one reason: closure traversals
(ops 10-12) dominated by per-node backend interactions.  This module
measures exactly that — median milliseconds per node for each closure
operation on each backend, together with the instrumentation counter
deltas (batch calls, RPC round trips, buffer faults) that *explain*
the number — and writes the result as one JSON document.

It is deliberately tiny and dependency-free so CI can run it as a
smoke job (``hypermodel bench-closure --level 4``) and archive the
JSON as a build artifact; ``benchmarks/bench_batch_traversal.py`` is
the pytest-benchmark twin for interactive exploration.
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import json
import os
import pstats
import statistics
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import CATALOG, Operations
from repro.harness.provenance import provenance
from repro.obs import FlightRecorder, Instrumentation, LatencyHistogram

#: The closure operations the batch layer targets (section 6.5/6.6).
CLOSURE_OPS = ("10", "11", "12")

#: Backends the benchmark compares (the paper's four architectures).
DEFAULT_BACKENDS = ("memory", "sqlite", "oodb", "clientserver")

#: Counter families worth reporting next to the timings.
_REPORTED_PREFIXES = (
    "backend.batch",
    "backend.rpc",
    "backend.op",
    "cache.readahead",
    "engine.buffer",
    "engine.store.batch",
    "netsim.cache",
)

#: ``ClosureCell.mode`` values derived from the backend's ``pushdown``
#: attribute: the clientserver pair reports which closure strategy it
#: ran, every other backend is simply "native".
_MODES = {True: "pushdown", False: "bfs"}


@dataclasses.dataclass
class ClosureCell:
    """One (backend, operation) measurement.

    ``p50_ms``/``p90_ms``/``p99_ms``/``max_ms`` summarize the
    per-repetition latency through a log-bucketed histogram (see
    :class:`~repro.obs.LatencyHistogram`); ``histogram`` carries the
    full bucket form so downstream tooling (bench-diff, plots) can
    recompute any quantile.

    ``level`` is the tree level the cell's database was generated at
    (cells from ``extra_levels`` runs carry theirs, so a mixed-level
    document stays self-describing).

    ``mode`` tags which closure strategy produced the cell
    (``"pushdown"`` / ``"bfs"`` on the clientserver pair, ``"native"``
    elsewhere); ``sim_ms`` / ``sim_ms_per_node`` are the *simulated*
    network time of the cold repetition — deterministic, so this is
    the column the pushdown-vs-BFS comparison reads (wall time on a
    loaded CI worker is not).
    """

    backend: str
    op_id: str
    op_name: str
    nodes: int
    repetitions: int
    median_ms: float
    median_ms_per_node: float
    counters: Dict[str, float]
    p50_ms: float = 0.0
    p90_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    histogram: Dict[str, object] = dataclasses.field(default_factory=dict)
    mode: str = "native"
    sim_ms: float = 0.0
    sim_ms_per_node: float = 0.0
    level: int = 4

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _reported(delta: Dict[str, float]) -> Dict[str, float]:
    return {
        name: value
        for name, value in sorted(delta.items())
        if name.startswith(_REPORTED_PREFIXES)
    }


def _result_nodes(op_id: str, result, subtree_nodes: int) -> int:
    """Node count for ms-per-node normalization.

    All three closure ops traverse the same root subtree, so they are
    normalized by the same node count; ops 10 and 12 report it
    directly (list length / update count), op 11 returns a sum and
    inherits the count measured by op 10.
    """
    if op_id == "10":
        return max(len(result), 1)
    if op_id == "12":
        return max(int(result), 1)
    return max(subtree_nodes, 1)


def _cell_key(backend: str, bench_level: int, base_level: int) -> str:
    """The document key of one (backend, level) column.

    The document's primary level keeps the plain backend name (so
    existing baselines keep matching); extra levels are suffixed
    ``-L<level>`` — e.g. ``oodb-L6`` — the same keyed-ablation pattern
    as ``clientserver-bfs``.
    """
    if bench_level == base_level:
        return backend
    return f"{backend}-L{bench_level}"


def run_closure_bench(
    backends: Sequence[str] = DEFAULT_BACKENDS,
    level: int = 4,
    repetitions: int = 5,
    seed: int = 19880301,
    workdir: Optional[str] = None,
    compare_pushdown: bool = False,
    extra_levels: Sequence[int] = (),
    profile: bool = False,
    timeline: Optional[str] = None,
) -> Dict[str, object]:
    """Measure ops 10-12 on every backend; return the JSON document.

    Every backend gets a freshly generated level-``level`` database.
    Each operation runs from the structure root (the deepest closure
    the database offers) ``repetitions`` times; the median wall-clock
    time is normalized by the operation's node count.  Counter deltas
    cover the *first* repetition — the cold pass, where the batch
    layer's round-trip and fault behaviour shows.

    ``compare_pushdown=True`` adds the ``clientserver-bfs`` ablation
    next to every ``clientserver`` entry, so the document carries a
    pushdown-vs-frontier-BFS comparison in its ``sim_ms_per_node``
    columns (and the mode-tagged cells give ``repro bench-diff`` both
    paths to gate).

    ``extra_levels`` re-runs every backend at each additional tree
    level; those cells land under ``<backend>-L<level>`` keys (each
    cell also carries its ``level``), so one document can hold, say,
    the level-4 grid *and* the level-6 big-database column the scaling
    gate reads.

    ``profile=True`` wraps each operation's **cold** repetition in
    :mod:`cProfile`; the per-cell top-25 cumulative reports collect
    under the document's ``"profiles"`` key (the CLI writes them next
    to the JSON).  Profiled wall-clock timings carry tracer overhead —
    use the flag to find hot spots, not to produce baselines.

    ``timeline`` writes a flight-recorder JSONL to that path: one
    sample per repetition, stamped on the **wall** clock (this harness
    measures wall time, so unlike the virtual-time benches the
    timeline is *not* byte-identical across runs — each sample says so
    in its ``clock`` field).
    """
    from repro.backends import create_backend

    if compare_pushdown:
        expanded: List[str] = []
        for backend in backends:
            expanded.append(backend)
            if backend == "clientserver" and (
                "clientserver-bfs" not in backends
            ):
                expanded.append("clientserver-bfs")
        backends = expanded
    levels = [level] + [extra for extra in extra_levels if extra != level]
    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="hypermodel-bench-")
        workdir = own_tmp.name
    cells: List[ClosureCell] = []
    cell_keys: List[str] = []
    profiles: Dict[str, str] = {}
    recorder = None
    bench_start = time.perf_counter()
    if timeline is not None:
        recorder = FlightRecorder(None, capacity=65536, clock="wall")
    try:
        for bench_level in levels:
            for backend in backends:
                key = _cell_key(backend, bench_level, level)
                cell_keys.append(key)
                instr = Instrumentation()
                if recorder is not None:
                    recorder.rebind(instr)
                path = os.path.join(workdir, f"closure-{key}.db")
                db = create_backend(backend, path, instrumentation=instr)
                mode = _MODES.get(getattr(db, "pushdown", None), "native")
                clock = getattr(db, "simulated_clock", None)
                db.open()
                try:
                    gen = DatabaseGenerator(
                        HyperModelConfig(levels=bench_level, seed=seed)
                    ).generate(db)
                    db.commit()
                    subtree_nodes = 0
                    for op_id in CLOSURE_OPS:
                        spec = CATALOG.get(op_id)
                        ops = Operations(db, gen.config)
                        # Section 5.3(e): close and reopen so the first
                        # repetition is a *cold* run — that's where the
                        # batch layer's round trips and faults show.
                        db.close()
                        db.open()
                        root = db.lookup(gen.root_uid)
                        timings_ms: List[float] = []
                        nodes = 1
                        sim_ms = 0.0
                        first_delta: Dict[str, float] = {}
                        for rep in range(repetitions):
                            before = instr.snapshot()
                            sim_start = (
                                clock.now if clock is not None else 0.0
                            )
                            profiler = None
                            if profile and rep == 0:
                                profiler = cProfile.Profile()
                                profiler.enable()
                            start = time.perf_counter()
                            result = spec.run(ops, (root,))
                            timings_ms.append(
                                (time.perf_counter() - start) * 1000.0
                            )
                            if profiler is not None:
                                profiler.disable()
                                profiles[f"{key} op {op_id}"] = (
                                    _profile_report(profiler)
                                )
                            if rep == 0:
                                if clock is not None:
                                    # Deterministic network cost of the
                                    # cold pass — the pushdown-vs-BFS
                                    # comparison column.
                                    sim_ms = (clock.now - sim_start) * 1000.0
                                first_delta = instr.delta_since(before)
                                nodes = _result_nodes(
                                    op_id, result, subtree_nodes
                                )
                                if op_id == "10":
                                    subtree_nodes = nodes
                            if spec.mutates:
                                db.commit()
                            if recorder is not None:
                                recorder.sample(
                                    time.perf_counter() - bench_start,
                                    label=f"{key}/op{op_id}",
                                )
                        median_ms = statistics.median(timings_ms)
                        hist = LatencyHistogram.from_samples(timings_ms)
                        cells.append(
                            ClosureCell(
                                backend=key,
                                op_id=op_id,
                                op_name=spec.name,
                                nodes=nodes,
                                repetitions=repetitions,
                                median_ms=round(median_ms, 4),
                                median_ms_per_node=round(
                                    median_ms / nodes, 6
                                ),
                                counters=_reported(first_delta),
                                p50_ms=round(hist.percentile(0.50), 4),
                                p90_ms=round(hist.percentile(0.90), 4),
                                p99_ms=round(hist.percentile(0.99), 4),
                                max_ms=round(hist.maximum, 4),
                                histogram=hist.to_dict(),
                                mode=mode,
                                sim_ms=round(sim_ms, 4),
                                sim_ms_per_node=round(sim_ms / nodes, 6),
                                level=bench_level,
                            )
                        )
                finally:
                    db.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    if recorder is not None and timeline is not None:
        recorder.write_jsonl(timeline)
    document: Dict[str, object] = {
        "benchmark": "closure-batch-traversal",
        "level": level,
        "repetitions": repetitions,
        "seed": seed,
        "operations": list(CLOSURE_OPS),
        "provenance": provenance(
            backends=list(backends),
            level=level,
            extra_levels=list(extra_levels),
            repetitions=repetitions,
            seed=seed,
        ),
        "cells": {
            key: {
                cell.op_id: cell.to_json()
                for cell in cells
                if cell.backend == key
            }
            for key in cell_keys
        },
    }
    if extra_levels:
        document["extra_levels"] = list(extra_levels)
    if profiles:
        document["profiles"] = profiles
    return document


def _profile_report(profiler: "cProfile.Profile", limit: int = 25) -> str:
    """The top-``limit`` cumulative-time lines of one profile run."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(limit)
    return buffer.getvalue()


def write_closure_bench(
    out_path: str,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    level: int = 4,
    repetitions: int = 5,
    seed: int = 19880301,
    compare_pushdown: bool = False,
    extra_levels: Sequence[int] = (),
    profile: bool = False,
    timeline: Optional[str] = None,
) -> Dict[str, object]:
    """Run :func:`run_closure_bench` and write ``out_path`` as JSON.

    With ``profile=True`` the per-cell cProfile reports are written to
    ``<out_path>.profile.txt`` next to the JSON (and stripped from the
    document itself, so baselines stay diffable).
    """
    document = run_closure_bench(
        backends=backends,
        level=level,
        repetitions=repetitions,
        seed=seed,
        compare_pushdown=compare_pushdown,
        extra_levels=extra_levels,
        profile=profile,
        timeline=timeline,
    )
    profiles = document.pop("profiles", None)
    if profiles:
        profile_path = out_path + ".profile.txt"
        with open(profile_path, "w", encoding="utf-8") as handle:
            for section, report in profiles.items():
                handle.write(f"=== {section} ===\n{report}\n")
        document["profile_report"] = os.path.basename(profile_path)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, object]) -> str:
    """A small fixed-width table of the document (for the CLI)."""
    lines = [
        f"closure batch traversal — level {document['level']}, "
        f"{document['repetitions']} repetitions",
        f"{'backend':<18}{'op':<5}{'name':<20}{'mode':<10}{'lvl':>4}"
        f"{'nodes':>7}{'med ms':>10}{'ms/node':>10}{'sim/node':>10}"
        f"{'rpc rt':>8}",
    ]
    cells = document["cells"]
    for backend, per_op in cells.items():  # type: ignore[union-attr]
        for op_id, cell in per_op.items():
            rpc = cell["counters"].get("backend.rpc.round_trips", 0)
            lines.append(
                f"{backend:<18}{op_id:<5}{cell['op_name']:<20}"
                f"{cell.get('mode', 'native'):<10}"
                f"{cell.get('level', document['level']):>4}"
                f"{cell['nodes']:>7}{cell['median_ms']:>10.3f}"
                f"{cell['median_ms_per_node']:>10.4f}"
                f"{cell.get('sim_ms_per_node', 0.0):>10.4f}{int(rpc):>8}"
            )
    return "\n".join(lines)
