"""The replication grid benchmark behind ``BENCH_replica.json``.

Measures the read-scaling claim of the replication layer over a
replica-count × write-rate × staleness-bound grid, in **virtual time**
(the document is a pure function of the grid and the seed, so CI
hard-gates it with ``repro bench-diff`` against
``benchmarks/baseline/BENCH_replica.json``):

* **read throughput and latency** — N reader workstations run cold
  closure push-down reads through their per-client
  :class:`~repro.replication.router.ReplicaRouter`; each replica
  serves its routed reads on its own contended transport lane
  (:func:`repro.netsim.sim.replica_lanes`), so reads stop queueing
  behind each other as replicas are added — the headline scaling
  figure (``scaling`` records the 1→max-replica throughput ratio per
  write-rate/lag combination).
* **write interference** — one writer workstation commits at a fixed
  virtual rate onto the primary lane; each reader also writes once
  mid-run, so under a non-zero apply lag its next reads must fall
  back to the primary until a replica catches up to its session LSN
  (the ``fallbacks`` count in each cell makes the read-your-writes
  tax visible).
* **routing cell** — a single-client comparison arm: the same cold
  closure served by a replica, forced to the primary
  (``ReplicaRouter.force_primary``), and warm from the workstation
  cache, confirming replica-served reads cost exactly what
  primary-served reads cost on an idle system.

Cells carry the same ``p50_ms``/``p90_ms``/``p99_ms`` + ``mode`` leaf
shape the other benchmarks use, under
``cells[replicas<N>-write<W>-lag<L>ms][reads|writes]``.
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator, GeneratedDatabase
from repro.harness.provenance import provenance
from repro.netsim.config import ReplicationConfig
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.sim import (
    DiscreteEventScheduler,
    LaneGroup,
    Workstation,
    replica_lanes,
)
from repro.obs import FlightRecorder, Instrumentation, LatencyHistogram
from repro.replication.group import ReplicationGroup

#: Default grid: replica counts × writer rates (writes per virtual
#: second) × apply lags (seconds).
DEFAULT_REPLICAS = (1, 2, 4)
DEFAULT_WRITE_RATES = (0.0, 40.0)
DEFAULT_LAGS = (0.0, 0.02)

#: Workload shape per cell.  Read scaling needs the *station pool* to
#: out-offer a single lane by more than the replica-count spread:
#: closures are drawn from the root's level-1 subtrees (uniform size,
#: so no one giant closure dominates the critical path) and 16 reader
#: stations keep even 4 replica lanes saturated.
_READERS = 16
_WRITER_WRITES = 12
_ROOT_LEVEL = 1
_SERVICE_SECONDS = 0.0002
_THINK_SECONDS = 0.002


def _generate_structure(level: int, seed: int):
    """Generate the shared structure once; return (gen, record dump)."""
    from repro.backends.clientserver import ClientServerDatabase
    from repro.netsim.server import ObjectServer

    server = ObjectServer(latency=LatencyModel())
    loader = ClientServerDatabase(server=server)
    loader.open()
    gen = DatabaseGenerator(
        HyperModelConfig(levels=level, seed=seed)
    ).generate(loader)
    loader.commit()
    loader.close()
    return gen, server.export_records()


def _leaf(samples_ms: List[float], mode: str, **extra: Any) -> Dict[str, Any]:
    hist = LatencyHistogram.from_samples(samples_ms)
    leaf: Dict[str, Any] = {
        "mode": mode,
        "samples": len(samples_ms),
        "p50_ms": round(hist.percentile(0.50), 4),
        "p90_ms": round(hist.percentile(0.90), 4),
        "p99_ms": round(hist.percentile(0.99), 4),
        "max_ms": round(hist.maximum, 4),
    }
    leaf.update(extra)
    return leaf


def _cell_key(replicas: int, write_rate: float, lag: float) -> str:
    return (
        f"replicas{replicas}-write{int(round(write_rate))}"
        f"-lag{int(round(lag * 1000))}ms"
    )


def _run_cell(
    gen: GeneratedDatabase,
    records: Dict[int, Dict[str, Any]],
    replicas: int,
    write_rate: float,
    lag: float,
    reads_per_reader: int,
    seed: int,
    recorder: Optional[FlightRecorder] = None,
) -> Dict[str, Any]:
    from repro.backends.clientserver import ClientServerDatabase

    instr = Instrumentation()
    latency = LatencyModel()
    group = ReplicationGroup(
        ReplicationConfig(replicas=replicas, apply_lag_seconds=lag),
        latency=latency,
        instrumentation=instr,
    )
    group.load_records(records)
    lanes = replica_lanes(
        latency,
        replicas,
        service_time_seconds=_SERVICE_SECONDS,
        instrumentation=instr,
        fallback_clock=group.clock,
    )
    transport = LaneGroup(lanes)
    cell_key = _cell_key(replicas, write_rate, lag)
    if recorder is not None:
        recorder.rebind(instr)

    read_samples: List[float] = []
    write_samples: List[float] = []
    jobs = []
    total_reads = 0
    for index in range(_READERS):
        client = ClientServerDatabase(
            server=group,
            clock=SimulatedClock(),
            instrumentation=instr,
            client_id=f"w{index:02d}",
        )
        client.open()
        rng = random.Random(seed * 6151 + index * 97 + replicas)
        station = Workstation(index, client, rng)
        tasks = []
        for step in range(reads_per_reader):
            if step == reads_per_reader // 2:
                # One mid-run write per reader: under a non-zero lag
                # the session token now outruns every replica, so the
                # next reads fall back to the primary until a replica
                # applies this commit — read-your-writes, measured.
                def write_once(client=client, rng=rng, step=step):
                    uid = gen.random_uid(rng)
                    start = client.simulated_clock.now
                    client.set_attribute(uid, "ten", step % 10)
                    client.commit()
                    write_samples.append(
                        (client.simulated_clock.now - start) * 1000.0
                    )

                tasks.append(write_once)

            def read_closure(client=client, rng=rng):
                root = gen.random_uid_at_level(rng, _ROOT_LEVEL)
                client.cache.clear()  # every closure starts cold
                start = client.simulated_clock.now
                if not client.prefetch_closure(root, "children", None):
                    raise RuntimeError("push-down unexpectedly disabled")
                read_samples.append(
                    (client.simulated_clock.now - start) * 1000.0
                )

            tasks.append(read_closure)
            total_reads += 1
        jobs.append((station, tasks))

    if write_rate > 0:
        writer = ClientServerDatabase(
            server=group,
            clock=SimulatedClock(),
            instrumentation=instr,
            client_id="wr",
        )
        writer.open()
        wrng = random.Random(seed * 7583 + replicas * 11)
        station = Workstation(_READERS, writer, wrng)
        interval = 1.0 / write_rate

        def make_write(step: int):
            def paced_write(writer=writer, wrng=wrng, step=step):
                # Self-paced: the writer advances its own clock to the
                # next beat, so its commit rate is the grid's write
                # rate regardless of the global think time.
                writer.simulated_clock.advance(interval)
                uid = gen.random_uid(wrng)
                start = writer.simulated_clock.now
                writer.set_attribute(uid, "ten", step % 10)
                writer.commit()
                write_samples.append(
                    (writer.simulated_clock.now - start) * 1000.0
                )

            return paced_write

        jobs.append(
            (station, [make_write(step) for step in range(_WRITER_WRITES)])
        )

    before = instr.snapshot()
    scheduler = DiscreteEventScheduler(
        group,
        transport,
        think_time_seconds=_THINK_SECONDS,
        recorder=recorder,
        sample_cadence_seconds=0.05 if recorder is not None else 0.0,
        sample_label=cell_key,
    )
    makespan = scheduler.run(jobs)
    delta = instr.delta_since(before)
    for station, _tasks in jobs:
        station.client.close()

    replica_reads = int(delta.get("backend.replica.reads", 0))
    fallbacks = int(delta.get("backend.replica.fallbacks", 0))
    cell: Dict[str, Any] = {
        "reads": _leaf(
            read_samples,
            "replica-read",
            throughput_per_s=round(total_reads / makespan, 4)
            if makespan > 0
            else 0.0,
            replica_reads=replica_reads,
            fallbacks=fallbacks,
            makespan_s=round(makespan, 6),
        )
    }
    if write_samples:
        cell["writes"] = _leaf(
            write_samples,
            "replica-write",
            writes=len(write_samples),
        )
    return cell


def _run_routing_cell(
    gen: GeneratedDatabase,
    records: Dict[int, Dict[str, Any]],
    closures: int,
    seed: int,
) -> Dict[str, Any]:
    """Single-client comparison arm: replica vs primary vs warm."""
    from repro.backends.clientserver import ClientServerDatabase

    instr = Instrumentation()
    group = ReplicationGroup(
        ReplicationConfig(replicas=1), instrumentation=instr
    )
    group.load_records(records)
    client = ClientServerDatabase(server=group, instrumentation=instr)
    client.open()
    clock = client.simulated_clock
    rng = random.Random(seed * 9377)
    roots = [gen.random_internal_uid(rng) for _ in range(closures)]

    def timed_closures(force_primary: bool, cold: bool) -> List[float]:
        client.server.force_primary = force_primary
        samples = []
        for root in roots:
            if cold:
                client.cache.clear()
            start = clock.now
            client.prefetch_closure(root, "children", None)
            samples.append((clock.now - start) * 1000.0)
        client.server.force_primary = False
        return samples

    replica_cold = timed_closures(force_primary=False, cold=True)
    primary_cold = timed_closures(force_primary=True, cold=True)
    warm = timed_closures(force_primary=False, cold=False)
    client.close()
    return {
        "replica_cold": _leaf(replica_cold, "replica-routed"),
        "primary_cold": _leaf(primary_cold, "primary-forced"),
        "warm": _leaf(warm, "workstation-warm"),
    }


def run_replica_bench(
    replica_counts: Sequence[int] = DEFAULT_REPLICAS,
    write_rates: Sequence[float] = DEFAULT_WRITE_RATES,
    lags: Sequence[float] = DEFAULT_LAGS,
    level: int = 4,
    reads_per_reader: int = 8,
    routing_closures: int = 6,
    seed: int = 1989,
    timeline: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the replica grid; return the JSON document.

    The structure is generated once (level ``level``, seed ``seed``)
    and loaded into a fresh replication group per cell, so cells are
    independent and grid order does not matter.  ``timeline`` writes a
    flight-recorder JSONL (cadence samples of the lane backlogs and
    the ``backend.replica.<i>.applied_lsn``/``lag`` gauges, stamped at
    the virtual clock with the cell key as label).
    """
    replica_counts = sorted(set(int(n) for n in replica_counts))
    if not replica_counts or replica_counts[0] < 1:
        raise ValueError("replica counts must be positive")
    for lag in lags:
        ReplicationConfig(replicas=max(replica_counts), apply_lag_seconds=lag)
    gen, records = _generate_structure(level, seed)
    recorder = None
    if timeline is not None:
        recorder = FlightRecorder(None, capacity=65536, clock="virtual")
    cells: Dict[str, Dict[str, Any]] = {}
    for replicas in replica_counts:
        for write_rate in write_rates:
            for lag in lags:
                cells[_cell_key(replicas, write_rate, lag)] = _run_cell(
                    gen,
                    records,
                    replicas,
                    write_rate,
                    lag,
                    reads_per_reader,
                    seed,
                    recorder=recorder,
                )
    cells["routing"] = _run_routing_cell(gen, records, routing_closures, seed)
    if recorder is not None and timeline is not None:
        recorder.write_jsonl(timeline)
    scaling: Dict[str, float] = {}
    low, high = replica_counts[0], replica_counts[-1]
    if high > low:
        for write_rate in write_rates:
            for lag in lags:
                base = cells[_cell_key(low, write_rate, lag)]["reads"]
                top = cells[_cell_key(high, write_rate, lag)]["reads"]
                if base["throughput_per_s"] > 0:
                    scaling[
                        f"write{int(round(write_rate))}"
                        f"-lag{int(round(lag * 1000))}ms"
                    ] = round(
                        top["throughput_per_s"] / base["throughput_per_s"],
                        4,
                    )
    return {
        "benchmark": "replica",
        "level": level,
        "seed": seed,
        "replica_counts": list(replica_counts),
        "write_rates": [float(rate) for rate in write_rates],
        "lags": [float(lag) for lag in lags],
        "readers": _READERS,
        "reads_per_reader": reads_per_reader,
        "scaling": scaling,
        "provenance": provenance(
            replica_counts=list(replica_counts),
            write_rates=[float(rate) for rate in write_rates],
            lags=[float(lag) for lag in lags],
            level=level,
            reads_per_reader=reads_per_reader,
            seed=seed,
        ),
        "cells": cells,
    }


def write_replica_bench(out_path: str, **kwargs: Any) -> Dict[str, Any]:
    """Run :func:`run_replica_bench` and write ``out_path`` as JSON."""
    document = run_replica_bench(**kwargs)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, Any]) -> str:
    """A small fixed-width table of the document (for the CLI)."""
    lines = [
        f"replica grid — level {document['level']},"
        f" {document['readers']}×{document['reads_per_reader']} closure"
        f" reads per cell, seed {document['seed']}",
        f"{'cell':>26}{'read p50':>10}{'p99':>9}{'tput/s':>9}"
        f"{'fallbacks':>11}",
    ]
    for key in sorted(document["cells"]):
        cell = document["cells"][key]
        if "reads" not in cell:
            continue
        reads = cell["reads"]
        lines.append(
            f"{key:>26}{reads['p50_ms']:>10.3f}{reads['p99_ms']:>9.3f}"
            f"{reads['throughput_per_s']:>9.1f}{reads['fallbacks']:>11}"
        )
    routing = document["cells"].get("routing")
    if routing:
        lines.append(
            "routing (1 client): replica cold"
            f" {routing['replica_cold']['p50_ms']:.3f} ms, primary cold"
            f" {routing['primary_cold']['p50_ms']:.3f} ms, warm"
            f" {routing['warm']['p50_ms']:.3f} ms"
        )
    for combo in sorted(document.get("scaling", {})):
        lines.append(
            f"scaling {document['replica_counts'][0]}→"
            f"{document['replica_counts'][-1]} @ {combo}:"
            f" {document['scaling'][combo]:.2f}x"
        )
    return "\n".join(lines)
