"""The crash-recovery matrix: kill the engine at *every* I/O boundary.

The R10 recoverability claim used to rest on a handful of hand-picked
torn-WAL tests.  This harness makes it exhaustive: a scripted,
deterministic workload (create/update/delete transactions with a
shadow model of the expected post-commit state) is first run once
through a :class:`~repro.engine.vfs.FaultInjectingVFS` with no faults
scheduled to *count* the mutating I/O operations, and then re-run once
per operation with a simulated crash — alternating clean and torn-write
crashes — scheduled at exactly that operation.  After each crash the
database files are reopened through a fresh
:class:`~repro.engine.vfs.RealVFS`, recovery runs, and two invariants
are checked:

* **atomicity** — the recovered object state equals *some* recorded
  post-commit snapshot (never a mix of two transactions, never a
  partial transaction);
* **durability** — that snapshot is at least as new as the last commit
  that *returned* to the caller before the crash (with ``sync_commits``
  on and group commit off, a returned commit is a durable commit), and
  no newer than the one commit that may have been in flight.

The matrix is surfaced as the ``repro crashtest`` CLI subcommand, which
writes a ``BENCH_crash.json`` document; CI runs a small matrix and
fails the build on any invariant violation.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.engine.vfs import FaultInjectingVFS, RealVFS, SimulatedCrash, VFS
from repro.errors import StorageError
from repro.harness.provenance import provenance

__all__ = [
    "CrashWorkload",
    "CrashPointResult",
    "run_crash_matrix",
    "write_crash_bench",
    "format_summary",
]

#: Objects created by the workload belong to this class.
_CLASS = "Doc"


@dataclasses.dataclass(frozen=True)
class CrashWorkload:
    """The scripted workload the matrix crashes over and over.

    Attributes:
        transactions: committed transactions after the schema setup.
        ops_per_txn: object operations per transaction.
        payload_bytes: size of each object's ``body`` field (bigger
            payloads mean more page writes per commit, hence more
            crash points).
        seed: drives the operation mix and the torn-write prefixes;
            one seed replays the whole matrix byte-identically.
    """

    transactions: int = 16
    ops_per_txn: int = 6
    payload_bytes: int = 512
    seed: int = 7


@dataclasses.dataclass
class CrashPointResult:
    """The outcome of one cell of the matrix.

    Attributes:
        op: the 1-based mutating I/O operation the crash was scheduled
            at.
        torn: whether the crash point was a torn write (seeded prefix
            persisted) rather than a clean kill.
        crashed: whether the workload actually died there.  Almost
            always true; the exception is a crash point landing in the
            post-checkpoint disposal path (e.g. the redundant header
            write in ``PageFile.close``), where the store ignores
            close-time errors by design and the run completes.
        commits_returned: commits that had returned to the caller when
            the crash hit — the durability lower bound.
        recovered_snapshot: index of the post-commit snapshot the
            recovered state matched (0 = empty database), or ``None``
            on an atomicity violation.
        violation: human-readable invariant violation, or ``None``.
    """

    op: int
    torn: bool
    crashed: bool
    commits_returned: int
    recovered_snapshot: Optional[int]
    violation: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form for the JSON document."""
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# The scripted workload
# ----------------------------------------------------------------------


def _run_workload(
    path: str,
    vfs: VFS,
    spec: CrashWorkload,
    snapshots: List[Dict[int, Dict[str, Any]]],
) -> None:
    """Run the scripted workload against ``path`` through ``vfs``.

    ``snapshots`` is a caller-owned list; entry 0 (the empty database)
    is appended first and one deep-copied shadow snapshot is appended
    after *each commit returns*, so when a :class:`SimulatedCrash`
    escapes, ``len(snapshots) - 1`` is exactly the number of commits
    the caller saw succeed.

    The operation stream is driven by a PRNG seeded from the spec, so
    every run — counting pre-pass and each crash run — performs the
    identical call sequence and allocates identical OIDs.
    """
    import random

    rng = random.Random(spec.seed)
    store = ObjectStore(path, sync_commits=True, vfs=vfs)
    try:
        store.open()
        snapshots.append({})
        store.define_class(
            _CLASS,
            [
                FieldDefinition("title", ""),
                FieldDefinition("rank", 0),
                FieldDefinition("body", ""),
            ],
        )
        shadow: Dict[int, Dict[str, Any]] = {}
        live: List[int] = []
        serial = 0
        for _txn in range(spec.transactions):
            for _op in range(spec.ops_per_txn):
                choice = rng.random()
                if not live or choice < 0.5:
                    serial += 1
                    state = {
                        "title": f"doc-{serial}",
                        "rank": rng.randrange(1000),
                        "body": "x" * spec.payload_bytes,
                    }
                    oid = store.new(_CLASS, state)
                    shadow[oid] = dict(state)
                    live.append(oid)
                elif choice < 0.85:
                    oid = live[rng.randrange(len(live))]
                    changes = {
                        "rank": rng.randrange(1000),
                        "title": f"doc-{serial}-rev{rng.randrange(100)}",
                    }
                    store.update(oid, changes)
                    shadow[oid].update(changes)
                else:
                    oid = live.pop(rng.randrange(len(live)))
                    store.delete(oid)
                    del shadow[oid]
            store.commit()
            snapshots.append(
                {oid: dict(state) for oid, state in shadow.items()}
            )
        store.close()
    finally:
        if store.is_open:
            # A crashed run cannot close cleanly (close() checkpoints,
            # which would just crash again); release the OS handles so
            # a large matrix does not exhaust file descriptors.
            store._dispose_handles()


def _recovered_state(path: str) -> Dict[int, Dict[str, Any]]:
    """Reopen ``path`` through a fresh RealVFS and read every object.

    Opening runs WAL recovery.  A crash before the schema commit became
    durable legitimately leaves no class; that reads as the empty
    snapshot.

    Recovery must never serve a stale ``(pid, slot, lsn)`` decode-cache
    entry, so two extra invariants are asserted here on every cell:
    the cache is empty immediately after the recovering open (no entry
    survives a restart), and a fully cache-served read pass agrees
    byte-for-byte with a cold re-read after ``drop_cache()``.
    """
    store = ObjectStore(path, vfs=RealVFS())
    store.open()
    try:
        if store._decode_cache is not None and len(store._decode_cache):
            raise AssertionError(
                "decode cache holds entries immediately after recovery"
            )
        if _CLASS not in store.catalog.class_names():
            return {}
        oids = list(store.scan_class(_CLASS))
        warm = {oid: store.get(oid) for oid in oids}  # fills the cache
        cached = {oid: store.get(oid) for oid in oids}  # all cache hits
        store.drop_cache()
        cold = {oid: store.get(oid) for oid in oids}  # straight from disk
        if not (warm == cached == cold):
            stale = sorted(
                oid for oid in oids if cached[oid] != cold[oid]
            )
            raise AssertionError(
                "decode cache served stale recovered state for oids "
                f"{stale[:5]}"
            )
        return cold
    finally:
        store.close()


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------


def _verify_cell(
    recovered: Dict[int, Dict[str, Any]],
    reference: List[Dict[int, Dict[str, Any]]],
    commits_returned: int,
) -> CrashPointResult:
    """Check the atomicity and durability invariants for one cell."""
    matches = [
        index
        for index, snapshot in enumerate(reference)
        if recovered == snapshot
    ]
    if not matches:
        return CrashPointResult(
            op=0,
            torn=False,
            crashed=True,
            commits_returned=commits_returned,
            recovered_snapshot=None,
            violation=(
                "atomicity: recovered state matches no post-commit"
                f" snapshot ({len(recovered)} objects recovered)"
            ),
        )
    # The crash can only lose the one transaction that was in flight,
    # so the recovered snapshot must lie in a two-snapshot window.
    window = [
        k
        for k in matches
        if commits_returned <= k <= commits_returned + 1
    ]
    if not window:
        best = max(matches)
        return CrashPointResult(
            op=0,
            torn=False,
            crashed=True,
            commits_returned=commits_returned,
            recovered_snapshot=best,
            violation=(
                f"durability: recovered snapshot {best} outside"
                f" [{commits_returned}, {commits_returned + 1}]"
                f" ({commits_returned} commits had returned)"
            ),
        )
    return CrashPointResult(
        op=0,
        torn=False,
        crashed=True,
        commits_returned=commits_returned,
        recovered_snapshot=min(window),
        violation=None,
    )


def run_crash_matrix(
    workload: Optional[CrashWorkload] = None,
    stride: int = 1,
    base_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the full crash matrix and return the JSON-ready document.

    Args:
        workload: the scripted workload (defaults sized so the matrix
            covers a few hundred crash points).
        stride: test every ``stride``-th crash point (1 = exhaustive;
            CI uses a coarser stride on the larger workloads).
        base_dir: parent for the per-cell scratch directories (a
            temporary directory by default).

    Returns:
        A document with per-cell results, the violation list and a
        histogram of recovered snapshot indices.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    spec = workload or CrashWorkload()
    with tempfile.TemporaryDirectory(dir=base_dir) as scratch:
        # -- counting pre-pass: how many crash points are there? ------
        reference: List[Dict[int, Dict[str, Any]]] = []
        counter = FaultInjectingVFS(seed=spec.seed)
        pre_path = os.path.join(scratch, "pre.hmdb")
        _run_workload(pre_path, counter, spec, reference)
        total_ops = counter.mutation_ops

        # -- one cell per (strided) mutating I/O operation ------------
        cells: List[CrashPointResult] = []
        for op in range(1, total_ops + 1, stride):
            torn = (op % 2) == 0
            cell_dir = os.path.join(scratch, f"cell-{op}")
            os.mkdir(cell_dir)
            path = os.path.join(cell_dir, "crash.hmdb")
            vfs = FaultInjectingVFS(seed=spec.seed + op).crash_at(
                op, torn=torn
            )
            snapshots: List[Dict[int, Dict[str, Any]]] = []
            crashed = False
            try:
                _run_workload(path, vfs, spec, snapshots)
            except SimulatedCrash:
                crashed = True
            except StorageError as error:  # pragma: no cover - defensive
                cells.append(
                    CrashPointResult(
                        op=op,
                        torn=torn,
                        crashed=True,
                        commits_returned=max(0, len(snapshots) - 1),
                        recovered_snapshot=None,
                        violation=f"workload died with {error!r}",
                    )
                )
                continue
            commits_returned = max(0, len(snapshots) - 1)
            if not crashed:
                # The schedule never fired (op beyond the run's I/O);
                # the run completed normally and must match its end.
                commits_returned = spec.transactions
            recovered = _recovered_state(path)
            cell = _verify_cell(recovered, reference, commits_returned)
            cell.op = op
            cell.torn = torn
            cell.crashed = crashed
            cells.append(cell)

    violations = [cell for cell in cells if cell.violation]
    histogram: Dict[str, int] = {}
    for cell in cells:
        key = (
            "violation"
            if cell.violation
            else str(cell.recovered_snapshot)
        )
        histogram[key] = histogram.get(key, 0) + 1
    return {
        "benchmark": "crash-recovery-matrix",
        "provenance": provenance(
            stride=stride, **dataclasses.asdict(spec)
        ),
        "workload": dataclasses.asdict(spec),
        "io_ops_total": total_ops,
        "stride": stride,
        "crash_points_tested": len(cells),
        "commits": spec.transactions,
        "violation_count": len(violations),
        "violations": [cell.to_dict() for cell in violations],
        "recovered_histogram": histogram,
        "cells": [cell.to_dict() for cell in cells],
    }


def write_crash_bench(
    out_path: str,
    workload: Optional[CrashWorkload] = None,
    stride: int = 1,
    base_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the matrix and write the document to ``out_path``."""
    document = run_crash_matrix(
        workload=workload, stride=stride, base_dir=base_dir
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, Any]) -> str:
    """A terminal summary of a crash-matrix document."""
    lines = [
        "crash-recovery matrix "
        f"({document['workload']['transactions']} txns, "
        f"{document['io_ops_total']} mutating I/O ops, "
        f"stride {document['stride']})",
        f"  crash points tested : {document['crash_points_tested']}",
        f"  invariant violations: {document['violation_count']}",
    ]
    histogram = document["recovered_histogram"]

    def _order(key: str) -> float:
        return float("inf") if key == "violation" else int(key)

    for key in sorted(histogram, key=_order):
        label = (
            "violations"
            if key == "violation"
            else f"recovered at snapshot {key:>3}"
        )
        lines.append(f"    {label}: {histogram[key]}")
    for cell in document["violations"][:10]:
        lines.append(
            f"  VIOLATION at op {cell['op']}"
            f" (torn={cell['torn']}): {cell['violation']}"
        )
    return "\n".join(lines)
