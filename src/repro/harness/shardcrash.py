"""The two-phase-commit crash matrix: kill 2PC at every seam.

:mod:`repro.harness.crashtest` makes single-engine recovery
exhaustive; this module does the same for the *distributed* commit the
shard router coordinates.  Each cell builds a fresh sharded deployment
(per-shard :class:`~repro.engine.wal.WriteAheadLog` files plus the
coordinator's decision log, all real files), drives one multi-shard
transaction up to a chosen point in the protocol, crashes the whole
site (every in-memory server is discarded), recovers every shard with
:meth:`~repro.netsim.server.ObjectServer.recover_from_wal`, and lets a
*new* router's :meth:`~repro.sharding.router.ShardRouter.resolve_in_doubt`
drive the in-doubt transactions to a decision from the decision log.

Crash points covered, per scripted transaction:

* ``coordinator-before-decision`` — all participants prepared, the
  coordinator dies before logging.  Presumed abort: every shard must
  abort, no write may survive.
* ``coordinator-after-decision`` — the decision is logged but no
  participant heard it.  Every shard must commit on resolve.
* ``coordinator-mid-delivery`` — the decision is logged and delivered
  to a strict subset of participants.  The rest must commit on
  resolve (never a mixed outcome).
* ``participant-after-prepare`` — the decision is logged; one prepared
  participant crashes before hearing it and re-parks the transaction
  in doubt from its WAL's PREPARE record.
* ``participant-torn-prepare`` — a participant crashes *inside* the
  prepare's WAL write (one cell per mutating I/O operation, clean and
  torn alternating, via
  :class:`~repro.engine.vfs.FaultInjectingVFS`).  The prepare never
  acknowledged, so the transaction must abort everywhere and the torn
  tail must not resurrect it in doubt.

Invariants checked per cell: **atomicity** (each shard applied all of
its slice or none), **agreement** (every shard landed on the
resolution the decision log implies), **no residue** (nothing left in
doubt, and the written uids are re-writable — pins released — via a
follow-up transaction through a fresh router).
"""

from __future__ import annotations

import copy
import dataclasses
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.vfs import FaultInjectingVFS, SimulatedCrash
from repro.engine.wal import WriteAheadLog
from repro.harness.provenance import provenance
from repro.netsim.config import ShardConfig
from repro.netsim.latency import SimulatedClock
from repro.netsim.server import ObjectServer
from repro.sharding.placement import make_placement
from repro.sharding.router import ShardRouter

__all__ = [
    "TwoPhaseWorkload",
    "run_two_phase_crash_matrix",
    "write_two_phase_crash_bench",
    "format_summary",
]

#: The protocol seams the matrix crashes at (see module docstring).
SCENARIOS = (
    "coordinator-before-decision",
    "coordinator-after-decision",
    "coordinator-mid-delivery",
    "participant-after-prepare",
    "participant-torn-prepare",
)

#: The attribute each transaction stamps; recovery checks read it back.
_MARK = "million"


@dataclasses.dataclass(frozen=True)
class TwoPhaseWorkload:
    """Shape of the scripted cross-shard transactions.

    Attributes:
        shards: shard servers in each cell's deployment.
        placement: OID→shard policy under test.
        transactions: scripted transactions; each crosses *all*
            shards (one owned uid per shard) and is crashed once per
            scenario.
        level: HyperModel level of the base structure the deployment
            is loaded with.
        seed: drives uid choice and the torn-write prefixes.
    """

    shards: int = 3
    placement: str = "hash"
    transactions: int = 4
    level: int = 2
    seed: int = 11

    def __post_init__(self) -> None:
        if self.shards < 2:
            raise ValueError("a 2PC matrix needs at least 2 shards")
        if self.transactions < 1:
            raise ValueError("transactions must be >= 1")


def _base_records(level: int, seed: int) -> Dict[int, Dict[str, Any]]:
    """Generate the structure once; every cell reloads this snapshot."""
    from repro.backends.clientserver import ClientServerDatabase

    server = ObjectServer()
    loader = ClientServerDatabase(server=server)
    loader.open()
    from repro.core.config import HyperModelConfig
    from repro.core.generator import DatabaseGenerator

    DatabaseGenerator(HyperModelConfig(levels=level, seed=seed)).generate(
        loader
    )
    loader.commit()
    loader.close()
    return server.export_records()


def _script_writes(
    records: Dict[int, Dict[str, Any]],
    spec: TwoPhaseWorkload,
) -> List[Dict[int, Dict[str, Any]]]:
    """One write set per transaction, each touching every shard.

    Deterministic: uids are taken in sorted order round-robin from
    each shard's owned pool, and the written record is the base record
    with a transaction-unique ``million`` marker.
    """
    placement = make_placement(
        ShardConfig(shards=spec.shards, placement=spec.placement)
    )
    pools: Dict[int, List[int]] = {
        index: [] for index in range(spec.shards)
    }
    for uid in sorted(records):
        pools[placement.shard_of(uid)].append(uid)
    for index, pool in pools.items():
        if not pool:
            raise ValueError(
                f"shard {index} owns no uids at level {spec.level};"
                " grow the structure or the placement is degenerate"
            )
    script: List[Dict[int, Dict[str, Any]]] = []
    for txn in range(spec.transactions):
        writes: Dict[int, Dict[str, Any]] = {}
        for index in range(spec.shards):
            uid = pools[index][txn % len(pools[index])]
            record = copy.deepcopy(records[uid])
            record[_MARK] = 1_000_000 + txn * spec.shards + index
            writes[uid] = record
        script.append(writes)
    return script


class _Deployment:
    """One cell's sharded site: real WAL files + in-memory servers."""

    def __init__(
        self,
        scratch: str,
        spec: TwoPhaseWorkload,
        records: Dict[int, Dict[str, Any]],
        wal_vfs: Optional[Dict[int, Any]] = None,
    ) -> None:
        self.spec = spec
        self.clock = SimulatedClock()
        self.config = ShardConfig(
            shards=spec.shards, placement=spec.placement
        )
        self.placement = make_placement(self.config)
        self.wal_paths = [
            os.path.join(scratch, f"shard{index}.wal")
            for index in range(spec.shards)
        ]
        self.decision_path = os.path.join(scratch, "decision.wal")
        vfs_map = wal_vfs or {}
        self.servers = [
            ObjectServer(
                self.clock,
                wal=WriteAheadLog(path, vfs=vfs_map.get(index)),
                shard_id=index,
            )
            for index, path in enumerate(self.wal_paths)
        ]
        self.decision_log = WriteAheadLog(self.decision_path)
        self.slices = {
            index: {
                uid: records[uid]
                for uid in self.placement.partition(records).get(index, ())
            }
            for index in range(spec.shards)
        }
        for index, server in enumerate(self.servers):
            server.load_records(self.slices[index])

    def recover(self) -> ShardRouter:
        """Crash the site: discard every server, rebuild from the WALs.

        Returns a fresh router over the recovered servers, sharing the
        reopened decision log — the caller runs ``resolve_in_doubt``.
        """
        for server in self.servers:
            if server.wal is not None:
                server.wal.close()
        self.decision_log.close()
        self.servers = [
            ObjectServer(
                self.clock,
                wal=WriteAheadLog(path),
                shard_id=index,
            )
            for index, path in enumerate(self.wal_paths)
        ]
        for index, server in enumerate(self.servers):
            server.recover_from_wal(self.slices[index])
        self.decision_log = WriteAheadLog(self.decision_path)
        return ShardRouter(
            self.config,
            servers=self.servers,
            decision_log=self.decision_log,
            placement=self.placement,
        )

    def close(self) -> None:
        for server in self.servers:
            if server.wal is not None:
                server.wal.close()
        self.decision_log.close()


def _verify_cell(
    deployment: _Deployment,
    router: ShardRouter,
    outcomes: Dict[int, str],
    txid: int,
    writes: Dict[int, Dict[str, Any]],
    expected: str,
) -> Optional[str]:
    """Check atomicity / agreement / no-residue for one recovered cell.

    Returns a violation description or ``None``.
    """
    if expected == "committed":
        resolution = outcomes.get(txid, "committed")
    else:
        # A torn prepare legitimately leaves nothing in doubt at all
        # (the PREPARE record never became readable), so an absent
        # outcome counts as the abort it implies.
        resolution = outcomes.get(txid, "aborted")
    if resolution != expected:
        return (
            f"agreement: txn {txid} resolved {resolution!r},"
            f" decision log implies {expected!r}"
        )
    visible: List[int] = []
    missing: List[int] = []
    for uid, record in writes.items():
        owner = deployment.servers[deployment.placement.shard_of(uid)]
        current = owner.export_records().get(uid)
        if current == record:
            visible.append(uid)
        else:
            missing.append(uid)
    if expected == "committed" and missing:
        return (
            f"atomicity: committed txn {txid} lost writes"
            f" {sorted(missing)} (applied {sorted(visible)})"
        )
    if expected == "aborted" and visible:
        return (
            f"atomicity: aborted txn {txid} leaked writes"
            f" {sorted(visible)}"
        )
    for index, server in enumerate(deployment.servers):
        if server.in_doubt():
            return (
                f"residue: shard {index} still holds"
                f" {server.in_doubt()} in doubt after resolve"
            )
    # Pins must be gone: the same uids commit again through the
    # recovered router (a leaked pin would raise a conflict).
    retry = {
        uid: {**copy.deepcopy(record), _MARK: record[_MARK] + 500}
        for uid, record in writes.items()
    }
    try:
        router.commit_batch(retry, {})
    except Exception as error:
        return f"residue: follow-up commit failed with {error!r}"
    return None


def _drive(
    deployment: _Deployment,
    scenario: str,
    txid: int,
    writes: Dict[int, Dict[str, Any]],
) -> str:
    """Run one transaction to the scenario's crash point.

    Returns the resolution the decision log now implies
    (``"committed"`` or ``"aborted"``).  ``participant-torn-prepare``
    is driven elsewhere (the crash happens *inside* a prepare).
    """
    groups = deployment.placement.partition(writes)
    participants = sorted(groups)
    for index in participants:
        deployment.servers[index].prepare_batch(
            txid, {uid: writes[uid] for uid in groups[index]}, {}
        )
    if scenario == "coordinator-before-decision":
        return "aborted"
    deployment.decision_log.log_commit(txid, [])
    if scenario == "coordinator-mid-delivery":
        deployment.servers[participants[0]].commit_prepared(txid)
    if scenario == "participant-after-prepare":
        # One prepared participant crashes alone *before* the site
        # does; recover() below rebuilds everyone anyway, which is a
        # strict superset of the single-shard restart.
        pass
    return "committed"


def _count_prepare_ops(
    scratch: str,
    spec: TwoPhaseWorkload,
    records: Dict[int, Dict[str, Any]],
    txid: int,
    writes: Dict[int, Dict[str, Any]],
    victim: int,
) -> int:
    """Counting pre-pass: mutating WAL I/O ops in the victim's prepare."""
    counter = FaultInjectingVFS(seed=spec.seed)
    pre_dir = os.path.join(scratch, "pre")
    os.mkdir(pre_dir)
    deployment = _Deployment(
        pre_dir, spec, records, wal_vfs={victim: counter}
    )
    try:
        groups = deployment.placement.partition(writes)
        deployment.servers[victim].prepare_batch(
            txid, {uid: writes[uid] for uid in groups[victim]}, {}
        )
    finally:
        deployment.close()
    return counter.mutation_ops


@dataclasses.dataclass
class _Cell:
    scenario: str
    txn: int
    op: int
    torn: bool
    expected: str
    violation: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def run_two_phase_crash_matrix(
    workload: Optional[TwoPhaseWorkload] = None,
    base_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the full scenario × transaction matrix; return the document.

    Deterministic end to end: the structure, the scripted write sets,
    the torn-write prefixes and the cell order are all seed-derived.
    """
    spec = workload or TwoPhaseWorkload()
    records = _base_records(spec.level, spec.seed)
    script = _script_writes(records, spec)
    cells: List[_Cell] = []
    with tempfile.TemporaryDirectory(dir=base_dir) as scratch:
        for txn, writes in enumerate(script):
            txid = txn + 1
            for scenario in SCENARIOS:
                if scenario == "participant-torn-prepare":
                    continue  # driven below, one cell per I/O op
                cell_dir = os.path.join(scratch, f"{scenario}-{txn}")
                os.mkdir(cell_dir)
                deployment = _Deployment(cell_dir, spec, records)
                expected = _drive(deployment, scenario, txid, writes)
                router = deployment.recover()
                outcomes = router.resolve_in_doubt()
                violation = _verify_cell(
                    deployment, router, outcomes, txid, writes, expected
                )
                deployment.close()
                cells.append(
                    _Cell(scenario, txn, 0, False, expected, violation)
                )
            # -- torn prepare: crash inside the victim's WAL write ----
            victim = spec.shards - 1
            torn_dir = os.path.join(scratch, f"torn-{txn}")
            os.mkdir(torn_dir)
            total_ops = _count_prepare_ops(
                torn_dir, spec, records, txid, writes, victim
            )
            for op in range(1, total_ops + 1):
                torn = (op % 2) == 0
                cell_dir = os.path.join(torn_dir, f"op-{op}")
                os.mkdir(cell_dir)
                vfs = FaultInjectingVFS(
                    seed=spec.seed + txn * 1000 + op
                ).crash_at(op, torn=torn)
                deployment = _Deployment(
                    cell_dir, spec, records, wal_vfs={victim: vfs}
                )
                groups = deployment.placement.partition(writes)
                participants = sorted(groups)
                prepared: List[int] = []
                violation: Optional[str] = None
                crashed = False
                for index in participants:
                    try:
                        deployment.servers[index].prepare_batch(
                            txid,
                            {uid: writes[uid] for uid in groups[index]},
                            {},
                        )
                        prepared.append(index)
                    except SimulatedCrash:
                        crashed = True
                        break
                if not crashed:
                    violation = (
                        f"torn-prepare cell at op {op} never crashed"
                        f" ({total_ops} ops counted)"
                    )
                else:
                    # Presumed abort: the coordinator saw the prepare
                    # fail, aborts the survivors, logs nothing … and
                    # then the whole site goes down too.
                    for index in prepared:
                        deployment.servers[index].abort_prepared(txid)
                    router = deployment.recover()
                    outcomes = router.resolve_in_doubt()
                    violation = _verify_cell(
                        deployment, router, outcomes, txid, writes,
                        "aborted",
                    )
                deployment.close()
                cells.append(
                    _Cell(
                        "participant-torn-prepare", txn, op, torn,
                        "aborted", violation,
                    )
                )
    violations = [cell for cell in cells if cell.violation]
    by_scenario: Dict[str, int] = {}
    for cell in cells:
        by_scenario[cell.scenario] = by_scenario.get(cell.scenario, 0) + 1
    return {
        "benchmark": "two-phase-crash-matrix",
        "provenance": provenance(**dataclasses.asdict(spec)),
        "workload": dataclasses.asdict(spec),
        "crash_points_tested": len(cells),
        "cells_by_scenario": by_scenario,
        "violation_count": len(violations),
        "violations": [cell.to_dict() for cell in violations],
        "cells": [cell.to_dict() for cell in cells],
    }


def write_two_phase_crash_bench(
    out_path: str,
    workload: Optional[TwoPhaseWorkload] = None,
    base_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the matrix and write the document to ``out_path``."""
    document = run_two_phase_crash_matrix(
        workload=workload, base_dir=base_dir
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, Any]) -> str:
    """A terminal summary of a two-phase crash-matrix document."""
    workload = document["workload"]
    lines = [
        "two-phase-commit crash matrix "
        f"({workload['shards']} shards, {workload['placement']}"
        f" placement, {workload['transactions']} txns)",
        f"  crash points tested : {document['crash_points_tested']}",
        f"  invariant violations: {document['violation_count']}",
    ]
    for scenario in SCENARIOS:
        count = document["cells_by_scenario"].get(scenario, 0)
        lines.append(f"    {scenario:<28}: {count}")
    for cell in document["violations"][:10]:
        lines.append(
            f"  VIOLATION [{cell['scenario']} txn {cell['txn']}"
            f" op {cell['op']}]: {cell['violation']}"
        )
    return "\n".join(lines)
