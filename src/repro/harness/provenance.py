"""Provenance headers for every ``BENCH_*.json`` document.

A benchmark number with no record of *what produced it* cannot anchor
a trajectory: the bench-diff regression gate compares JSONs across
commits, so each document carries a ``provenance`` block — git SHA,
python version and platform, timestamp, and the writer's options
(backends, seed, workload knobs) — making every point attributable.

The git probe is best-effort: outside a git checkout (an installed
wheel, an exported tarball) the SHA reads ``"unknown"`` and nothing
fails.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Any, Dict


def _git_sha() -> str:
    """The current checkout's commit SHA, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def _git_dirty() -> bool:
    """Whether the checkout has uncommitted changes (False when unknown)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return False
    return proc.returncode == 0 and bool(proc.stdout.strip())


def provenance(**options: Any) -> Dict[str, Any]:
    """The provenance block for one benchmark document.

    Keyword arguments become the ``options`` sub-dict — pass the
    writer's knobs (backends, level, seed, workload shape) so the
    document records not just *when* but *what configuration*.
    """
    return {
        "git_sha": _git_sha(),
        "git_dirty": _git_dirty(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "options": dict(options),
    }
