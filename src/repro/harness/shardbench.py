"""The sharding grid benchmark behind ``BENCH_sharded.json``.

Measures the two costs the sharded deployment trades against each
other, over a shard-count × placement-policy grid:

* **closure latency** — cold scatter-gather closure push-down from
  seeded random internal nodes: hash placement pays a cross-shard
  round for almost every depth level, subtree-affine placement keeps
  1-N closures inside one shard (clustering as a placement policy —
  the benchmark axis Darmont's critique asks for);
* **update latency / throughput** — small read-modify-write
  transactions under optimistic concurrency: multi-shard write sets
  pay the two-phase-commit prepare+decide rounds, single-shard ones
  keep the classic one-round-trip ``commit_batch``.

All times are **virtual** (the simulated clock): the document is a
pure function of the grid and the seed, byte-identical across
machines, so CI hard-gates it with ``repro bench-diff`` against
``benchmarks/baseline/BENCH_sharded.json``.  Cells carry the same
``p50_ms``/``p90_ms``/``p99_ms`` + ``mode`` leaf shape the other
benchmarks use, under ``cells[shards<N>-<placement>][closure|update]``.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator, GeneratedDatabase
from repro.harness.provenance import provenance
from repro.netsim.config import NetworkConfig, ShardConfig
from repro.netsim.latency import LatencyModel
from repro.obs import FlightRecorder, Instrumentation, LatencyHistogram

#: Default grid: shard counts × placement policies.
DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_PLACEMENTS = ("hash", "affine")


def _generate_structure(level: int, seed: int):
    """Generate the shared structure once; return (gen, record dump)."""
    from repro.backends.clientserver import ClientServerDatabase
    from repro.netsim.server import ObjectServer

    server = ObjectServer(latency=LatencyModel())
    loader = ClientServerDatabase(server=server)
    loader.open()
    gen = DatabaseGenerator(
        HyperModelConfig(levels=level, seed=seed)
    ).generate(loader)
    loader.commit()
    loader.close()
    return gen, server.export_records()


@dataclasses.dataclass
class _Phase:
    """Latency samples + counter deltas of one measured phase."""

    samples_ms: List[float]
    counters: Dict[str, float]

    def leaf(self, mode: str, **extra: Any) -> Dict[str, Any]:
        hist = LatencyHistogram.from_samples(self.samples_ms)
        leaf: Dict[str, Any] = {
            "mode": mode,
            "samples": len(self.samples_ms),
            "p50_ms": round(hist.percentile(0.50), 4),
            "p90_ms": round(hist.percentile(0.90), 4),
            "p99_ms": round(hist.percentile(0.99), 4),
            "max_ms": round(hist.maximum, 4),
        }
        leaf.update(extra)
        return leaf


def _run_cell(
    gen: GeneratedDatabase,
    records: Dict[int, Dict[str, Any]],
    shards: int,
    placement: str,
    closures: int,
    updates: int,
    seed: int,
    recorder: Optional[FlightRecorder] = None,
) -> Dict[str, Any]:
    from repro.backends.clientserver import ClientServerDatabase

    instr = Instrumentation()
    network = NetworkConfig(
        concurrency="optimistic",
        sharding=ShardConfig(shards=shards, placement=placement),
    )
    db = ClientServerDatabase(network=network, instrumentation=instr)
    db.open()
    db.server.load_records(records)
    clock = db.simulated_clock
    rng = random.Random(
        seed * 7919 + shards * 101 + (13 if placement == "hash" else 29)
    )
    cell_key = f"shards{shards}-{placement}"
    if recorder is not None:
        # Each cell builds its own handle; repoint the shared recorder
        # at it (baselines restart, retained samples stay).
        recorder.rebind(instr)

    # -- cold closures ------------------------------------------------
    before = instr.snapshot()
    closure_samples: List[float] = []
    for _ in range(closures):
        root = gen.random_internal_uid(rng)
        db.cache.clear()  # every closure starts cold
        start = clock.now
        pushed = db.prefetch_closure(root, "children", None)
        if not pushed:  # pragma: no cover - pushdown is on in this grid
            raise RuntimeError("closure push-down unexpectedly disabled")
        closure_samples.append((clock.now - start) * 1000.0)
        if recorder is not None:
            recorder.sample(clock.now, label=f"{cell_key}/closure")
    closure_delta = instr.delta_since(before)
    closure = _Phase(closure_samples, closure_delta).leaf(
        "sharded-closure",
        round_trips=int(closure_delta.get("backend.rpc.round_trips", 0)),
        scatter_rounds=int(
            closure_delta.get("backend.rpc.scatter.rounds", 0)
        ),
        rpcs_per_closure=round(
            closure_delta.get("backend.rpc.round_trips", 0) / closures, 4
        ),
    )

    # -- optimistic updates (2PC when the write set spans shards) -----
    before = instr.snapshot()
    update_samples: List[float] = []
    update_start = clock.now
    for step in range(updates):
        a = gen.random_uid(rng)
        b = gen.random_uid(rng)
        start = clock.now
        db.set_attribute(a, "ten", step % 10)
        if b != a:
            db.set_attribute(b, "ten", (step + 1) % 10)
        db.commit()
        update_samples.append((clock.now - start) * 1000.0)
        if recorder is not None:
            recorder.sample(clock.now, label=f"{cell_key}/update")
    update_span = clock.now - update_start
    update_delta = instr.delta_since(before)
    update = _Phase(update_samples, update_delta).leaf(
        "sharded-update",
        round_trips=int(update_delta.get("backend.rpc.round_trips", 0)),
        two_phase_commits=int(update_delta.get("backend.2pc.commits", 0)),
        throughput_per_s=round(updates / update_span, 4)
        if update_span > 0
        else 0.0,
    )
    db.close()
    return {"closure": closure, "update": update}


def _run_deep_cell(
    gen: GeneratedDatabase,
    records: Dict[int, Dict[str, Any]],
    shards: int,
    placement: str,
    closures: int,
    level: int,
) -> Dict[str, Any]:
    """One whole-structure closure cell at a deep level.

    The cache capacity is raised past the structure size so the full
    closure ships in one push-down (the default 4096 cap would admit a
    prefix and hide the scatter cost being measured).  The leaf carries
    ``nodes`` and ``median_ms_per_node`` so a baseline can attach a
    ``budget_ms_per_node`` ceiling later — until then the cell is
    informational only (bench-diff skips cells the baseline lacks).
    """
    from repro.backends.clientserver import ClientServerDatabase

    instr = Instrumentation()
    network = NetworkConfig(
        concurrency="optimistic",
        cache_capacity=131072,
        sharding=ShardConfig(shards=shards, placement=placement),
    )
    db = ClientServerDatabase(network=network, instrumentation=instr)
    db.open()
    db.server.load_records(records)
    clock = db.simulated_clock
    before = instr.snapshot()
    samples_ms: List[float] = []
    nodes = 0
    for _ in range(closures):
        db.cache.clear()
        start = clock.now
        if not db.prefetch_closure(gen.root_uid, "children", None):
            raise RuntimeError("closure push-down unexpectedly disabled")
        samples_ms.append((clock.now - start) * 1000.0)
    delta = instr.delta_since(before)
    nodes = int(delta.get("backend.rpc.pushdown.objects", 0)) // max(
        closures, 1
    )
    leaf = _Phase(samples_ms, delta).leaf(
        "sharded-deep-closure",
        level=level,
        nodes=nodes,
        median_ms_per_node=round(
            (sorted(samples_ms)[len(samples_ms) // 2] / nodes) if nodes else 0.0,
            6,
        ),
        round_trips=int(delta.get("backend.rpc.round_trips", 0)),
        scatter_rounds=int(delta.get("backend.rpc.scatter.rounds", 0)),
    )
    db.close()
    return {"closure": leaf}


def run_sharded_bench(
    shard_counts: Sequence[int] = DEFAULT_SHARDS,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    level: int = 4,
    closures: int = 12,
    updates: int = 24,
    seed: int = 1989,
    timeline: Optional[str] = None,
    deep_level: Optional[int] = None,
    deep_closures: int = 2,
) -> Dict[str, Any]:
    """Run the shard-count × placement grid; return the JSON document.

    The structure is generated once (level ``level``, seed ``seed``)
    and loaded into a fresh sharded deployment per cell, so cells are
    independent and the grid order does not matter.

    ``timeline`` writes a flight-recorder JSONL to that path: one
    sample per closure and per update iteration, stamped at the
    virtual clock with ``<cell>/closure`` / ``<cell>/update`` labels.
    Deterministic, and strictly additive to the returned document.

    ``deep_level`` adds one whole-structure closure cell per placement
    at the largest shard count (key ``deep<level>-shards<N>-<policy>``)
    over a structure generated at that level — the scale cell (level 7
    is 97 656 nodes).  It is additive and soft: bench-diff skips cells
    the committed baseline does not carry.
    """
    shard_counts = sorted(set(int(n) for n in shard_counts))
    if not shard_counts or shard_counts[0] < 1:
        raise ValueError("shard counts must be positive")
    for placement in placements:
        ShardConfig(shards=max(shard_counts), placement=placement)
    gen, records = _generate_structure(level, seed)
    recorder = None
    if timeline is not None:
        recorder = FlightRecorder(None, capacity=65536, clock="virtual")
    cells: Dict[str, Dict[str, Any]] = {}
    for shards in shard_counts:
        for placement in placements:
            cells[f"shards{shards}-{placement}"] = _run_cell(
                gen,
                records,
                shards,
                placement,
                closures,
                updates,
                seed,
                recorder=recorder,
            )
    if deep_level is not None:
        deep_gen, deep_records = _generate_structure(deep_level, seed)
        deep_shards = shard_counts[-1]
        for placement in placements:
            cells[f"deep{deep_level}-shards{deep_shards}-{placement}"] = (
                _run_deep_cell(
                    deep_gen,
                    deep_records,
                    deep_shards,
                    placement,
                    deep_closures,
                    deep_level,
                )
            )
    if recorder is not None and timeline is not None:
        recorder.write_jsonl(timeline)
    document = {
        "benchmark": "sharded",
        "level": level,
        "seed": seed,
        "shard_counts": list(shard_counts),
        "placements": list(placements),
        "closures": closures,
        "updates": updates,
        "provenance": provenance(
            shard_counts=list(shard_counts),
            placements=list(placements),
            level=level,
            closures=closures,
            updates=updates,
            seed=seed,
        ),
        "cells": cells,
    }
    if deep_level is not None:
        document["deep_level"] = deep_level
        document["deep_closures"] = deep_closures
    return document


def write_sharded_bench(out_path: str, **kwargs: Any) -> Dict[str, Any]:
    """Run :func:`run_sharded_bench` and write ``out_path`` as JSON."""
    document = run_sharded_bench(**kwargs)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, Any]) -> str:
    """A small fixed-width table of the document (for the CLI)."""
    lines = [
        f"sharded grid — level {document['level']},"
        f" {document['closures']} closures + {document['updates']} updates"
        f" per cell, seed {document['seed']}",
        f"{'cell':>18}{'closure p50':>13}{'p99':>9}{'rpc/clo':>9}"
        f"{'update p50':>12}{'p99':>9}{'2pc':>6}{'tput/s':>9}",
    ]
    for key in sorted(document["cells"]):
        cell = document["cells"][key]
        closure, update = cell["closure"], cell.get("update")
        if update is None:  # the deep scale cell: closures only
            lines.append(
                f"{key:>18}{closure['p50_ms']:>13.3f}"
                f"{closure['p99_ms']:>9.3f}"
                f"  ({closure['nodes']} nodes,"
                f" {closure['median_ms_per_node']:.4f} ms/node)"
            )
            continue
        lines.append(
            f"{key:>18}{closure['p50_ms']:>13.3f}{closure['p99_ms']:>9.3f}"
            f"{closure['rpcs_per_closure']:>9.2f}"
            f"{update['p50_ms']:>12.3f}{update['p99_ms']:>9.3f}"
            f"{update['two_phase_commits']:>6}"
            f"{update['throughput_per_s']:>9.1f}"
        )
    return "\n".join(lines)
