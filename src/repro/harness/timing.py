"""Timers and summary statistics for the measurement protocol.

Wall-clock time is measured with ``time.perf_counter``.  Backends that
simulate a network (the client/server architecture) expose a
``simulated_clock`` attribute; :class:`Timer` reads it before and after
the timed region and *adds the virtual delta to the elapsed wall time*,
so a reported millisecond figure always means "compute plus
communication", deterministically.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class Stats:
    """Summary statistics over a sample of seconds (or any floats)."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    stdev: float
    total: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Stats":
        """Compute statistics; at least one sample is required."""
        if not samples:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(samples)
        n = len(ordered)
        total = sum(ordered)
        mean = total / n
        if n % 2:
            median = ordered[n // 2]
        else:
            median = (ordered[n // 2 - 1] + ordered[n // 2]) / 2
        variance = sum((x - mean) ** 2 for x in ordered) / n
        return cls(
            count=n,
            mean=mean,
            median=median,
            minimum=ordered[0],
            maximum=ordered[-1],
            stdev=math.sqrt(variance),
            total=total,
        )

    def scaled(self, factor: float) -> "Stats":
        """Return these statistics multiplied by a constant (unit change)."""
        return Stats(
            count=self.count,
            mean=self.mean * factor,
            median=self.median * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
            stdev=self.stdev * factor,
            total=self.total * factor,
        )

    def to_dict(self) -> dict:
        """Serializable form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "Stats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**raw)


class Timer:
    """Measures one region: wall time plus any simulated network time.

    Usage::

        timer = Timer(getattr(db, "simulated_clock", None))
        with timer:
            run_the_operation()
        seconds = timer.elapsed
    """

    def __init__(self, simulated_clock: Optional[object] = None) -> None:
        self._clock = simulated_clock
        self.elapsed = 0.0
        self.wall = 0.0
        self.simulated = 0.0
        self._wall_start = 0.0
        self._sim_start = 0.0

    def __enter__(self) -> "Timer":
        if self._clock is not None:
            self._sim_start = self._clock.now
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall = time.perf_counter() - self._wall_start
        self.simulated = (
            self._clock.now - self._sim_start if self._clock is not None else 0.0
        )
        self.elapsed = self.wall + self.simulated


def time_calls(
    calls: List,
    simulated_clock: Optional[object] = None,
    histogram: Optional[object] = None,
) -> List[float]:
    """Time a list of zero-argument callables individually.

    Returns per-call elapsed seconds (wall + simulated).  When a
    :class:`~repro.obs.LatencyHistogram` is passed, each call's
    latency is also recorded into it in **milliseconds** (the repo's
    histogram unit convention).
    """
    samples = []
    for call in calls:
        timer = Timer(simulated_clock)
        with timer:
            call()
        samples.append(timer.elapsed)
        if histogram is not None:
            histogram.record(timer.elapsed * 1000.0)
    return samples
