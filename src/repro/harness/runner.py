"""The grid driver: backends x levels x operations in one call.

:class:`BenchmarkRunner` generates one test database per
(backend, level) pair — measuring creation while at it — then runs the
cold/warm sequence for every requested operation, collecting a
:class:`~repro.harness.results.ResultSet` plus the creation-phase
timings.  File-backed backends build their databases under a work
directory so repeated runs in one process reuse nothing by accident.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.backends.registry import create_backend, get_backend_spec
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator, GeneratedDatabase
from repro.core.interface import HyperModelDatabase
from repro.core.operations import CATALOG, OperationCatalog
from repro.harness.protocol import (
    DEFAULT_REPETITIONS,
    ColdWarmResult,
    run_operation_sequence,
)
from repro.harness.results import ResultSet
from repro.obs import Instrumentation


@dataclasses.dataclass
class RunnerConfig:
    """What to run.

    Attributes:
        backends: registry names to benchmark.
        levels: leaf levels of the test databases (paper: 4, 5, 6).
        op_ids: operations to run (default: the whole catalog).
        repetitions: per cold/warm run (paper: 50).
        seed: base seed for generation and input picking.
        workdir: where file-backed databases are created (a temporary
            directory if omitted).
        instrumentation: a live :class:`~repro.obs.Instrumentation`
            handle passed to every backend the runner builds, so the
            results carry per-run counter deltas; ``None`` leaves the
            process default (usually the no-op singleton) in charge.
    """

    backends: List[str] = dataclasses.field(
        default_factory=lambda: ["memory", "sqlite", "oodb", "clientserver"]
    )
    levels: List[int] = dataclasses.field(default_factory=lambda: [4])
    op_ids: Optional[List[str]] = None
    repetitions: int = DEFAULT_REPETITIONS
    seed: int = 19880301
    workdir: Optional[str] = None
    instrumentation: Optional[Instrumentation] = None


@dataclasses.dataclass
class GridCell:
    """One populated database of the grid, ready for operations."""

    backend_name: str
    level: int
    db: HyperModelDatabase
    gen: GeneratedDatabase
    creation_phases: Dict[str, float]


class BenchmarkRunner:
    """Builds the database grid and runs the operation sequences."""

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        catalog: Optional[OperationCatalog] = None,
    ) -> None:
        self.config = config or RunnerConfig()
        self.catalog = catalog or CATALOG
        self._workdir = self.config.workdir or tempfile.mkdtemp(
            prefix="hypermodel-"
        )
        self._cells: Dict[Tuple[str, int], GridCell] = {}

    @property
    def workdir(self) -> str:
        """Where file-backed databases live."""
        return self._workdir

    @property
    def instrumentation(self) -> Optional[Instrumentation]:
        """The live handle every backend the runner builds shares.

        ``None`` when the runner was configured without one (backends
        then resolve the process-global default).  The CLI's
        ``bench --trace`` exports this handle's span ring after the
        grid finishes.
        """
        return self.config.instrumentation

    # ------------------------------------------------------------------
    # Database construction
    # ------------------------------------------------------------------

    def _backend_path(self, backend: str, level: int) -> Optional[str]:
        if not get_backend_spec(backend).needs_path:
            return None
        suffix = "db" if backend == "sqlite-file" else "hmdb"
        return os.path.join(self._workdir, f"{backend}-L{level}.{suffix}")

    def build_cell(self, backend: str, level: int) -> GridCell:
        """Create and populate one (backend, level) database.

        Cells are cached: asking again returns the already-built one.
        """
        key = (backend, level)
        if key in self._cells:
            return self._cells[key]
        hm_config = HyperModelConfig(levels=level, seed=self.config.seed)
        db = create_backend(
            backend,
            self._backend_path(backend, level),
            instrumentation=self.config.instrumentation,
        )
        db.open()
        gen = DatabaseGenerator(hm_config).generate(db)
        phases: Dict[str, float] = {}
        phases.update(
            {f"node-{k}": v for k, v in gen.stats.per_node_ms().items()}
        )
        phases.update(
            {f"rel-{k}": v for k, v in gen.stats.per_relationship_ms().items()}
        )
        db.commit()
        cell = GridCell(backend, level, db, gen, phases)
        self._cells[key] = cell
        return cell

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run_cell(
        self, cell: GridCell, op_ids: Optional[List[str]] = None
    ) -> List[ColdWarmResult]:
        """Run the requested operations against one populated cell."""
        requested = op_ids or self.config.op_ids or self.catalog.op_ids
        results = []
        for op_id in requested:
            spec = self.catalog.get(op_id)
            if (
                spec.op_id == "02"
                and not cell.db.supports_object_identity
            ):
                continue  # the paper's "if applicable" clause
            if spec.op_id == "16" and not cell.gen.text_uids:
                continue  # no text nodes at this configuration
            if spec.op_id == "17" and not cell.gen.form_uids:
                continue  # no form nodes at this configuration
            results.append(
                run_operation_sequence(
                    cell.db,
                    spec,
                    cell.gen,
                    repetitions=self.config.repetitions,
                    seed=self.config.seed,
                )
            )
        return results

    def run(self) -> Tuple[ResultSet, Dict[Tuple[str, int], Dict[str, float]]]:
        """Run the full grid.

        Returns:
            (results, creation) where ``creation`` maps
            (backend, level) to its creation-phase milliseconds.
        """
        results = ResultSet()
        creation: Dict[Tuple[str, int], Dict[str, float]] = {}
        for level in self.config.levels:
            for backend in self.config.backends:
                cell = self.build_cell(backend, level)
                creation[(backend, level)] = cell.creation_phases
                results.extend(self.run_cell(cell))
        return results, creation

    def close(self) -> None:
        """Close every database the runner built."""
        for cell in self._cells.values():
            if cell.db.is_open:
                cell.db.close()
        self._cells.clear()

    def __enter__(self) -> "BenchmarkRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
