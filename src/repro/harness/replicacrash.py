"""The promote-on-primary-crash failover drill.

:mod:`repro.harness.shardcrash` kills two-phase commit at every seam;
this module does the same for replication's failover path.  Each cell
builds a fresh :class:`~repro.replication.group.ReplicationGroup`
whose primary WAL rides a
:class:`~repro.engine.vfs.FaultInjectingVFS`, drives a scripted
sequence of acknowledged transactions through a
:class:`~repro.replication.router.ReplicaRouter`, and crashes the
primary at one chosen mutating I/O operation inside the commit path —
one cell per operation, clean and torn-write crashes alternating.  The
drill then runs the election (:meth:`ReplicationGroup.promote`, whose
``replication.failover`` span is the failover gap in the exported
Chrome trace) and checks, at the *new* primary:

* **election** — the promoted replica's applied LSN is the maximum
  across the group (the highest-applied-LSN replica wins);
* **durability** — every *acknowledged* transaction's writes are fully
  visible.  Acknowledgement happens only after log-before-apply, so
  nothing a client saw commit may be lost by the crash;
* **atomicity** — the one in-flight transaction is all-or-nothing.  A
  crash *after* its records are fully logged (e.g. at the fsync) may
  legitimately surface it complete; a crash mid-append leaves a torn
  tail the shipper never frames, so not one of its writes may appear;
* **read-your-writes across failover** — the same router that drove
  the workload re-routes: a read of acked data, then a fresh write and
  its read-back, all succeed against the promoted primary without the
  client being told anything beyond the generation bump.

Every violated check becomes a named violation string in the emitted
document (``BENCH_failover.json`` in CI), which the crash-matrix job
gates on ``violation_count == 0``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.vfs import FaultInjectingVFS, MemoryVFS, SimulatedCrash
from repro.harness.provenance import provenance
from repro.netsim.config import ReplicationConfig
from repro.obs import Instrumentation
from repro.replication.group import ReplicationGroup
from repro.replication.router import ReplicaRouter

__all__ = [
    "FailoverWorkload",
    "run_failover_drill",
    "write_failover_bench",
    "format_summary",
]

#: The attribute each transaction stamps; post-promotion checks read it.
_MARK = "million"

#: Marker for the post-failover probe write (outside the txn range).
_PROBE_VALUE = 7_777_777


@dataclasses.dataclass(frozen=True)
class FailoverWorkload:
    """Shape of the scripted workload the drill crashes.

    Attributes:
        replicas: replica count behind the primary.
        transactions: acknowledged-write transactions scripted before
            the crash window closes; each touches two distinct uids
            (so atomicity is observable) and the matrix crashes once
            per mutating I/O operation across all of them.
        level: HyperModel level of the base structure.
        seed: drives uid choice and the torn-write prefixes.
        apply_lag_seconds: replica apply lag; the drill keeps the
            default 0 so acked work is shipped when the primary dies
            (promotion drains the log either way).
    """

    replicas: int = 2
    transactions: int = 5
    level: int = 2
    seed: int = 11
    apply_lag_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("a failover drill needs at least 1 replica")
        if self.transactions < 1:
            raise ValueError("transactions must be >= 1")


def _base_records(level: int, seed: int) -> Dict[int, Dict[str, Any]]:
    """Generate the structure once; every cell reloads this snapshot."""
    from repro.backends.clientserver import ClientServerDatabase
    from repro.core.config import HyperModelConfig
    from repro.core.generator import DatabaseGenerator
    from repro.netsim.server import ObjectServer

    server = ObjectServer()
    loader = ClientServerDatabase(server=server)
    loader.open()
    DatabaseGenerator(HyperModelConfig(levels=level, seed=seed)).generate(
        loader
    )
    loader.commit()
    loader.close()
    return server.export_records()


def _script_writes(
    records: Dict[int, Dict[str, Any]],
    spec: FailoverWorkload,
) -> List[Dict[int, Dict[str, Any]]]:
    """One two-record write set per transaction, uids disjoint across
    transactions so every uid has exactly one expected final value."""
    uids = sorted(records)
    if len(uids) < 2 * spec.transactions + 1:
        raise ValueError(
            f"level {spec.level} holds {len(uids)} records; "
            f"{spec.transactions} transactions need "
            f"{2 * spec.transactions + 1}"
        )
    script: List[Dict[int, Dict[str, Any]]] = []
    for txn in range(spec.transactions):
        writes: Dict[int, Dict[str, Any]] = {}
        for uid in (uids[2 * txn], uids[2 * txn + 1]):
            record = dict(records[uid])
            record[_MARK] = 1_000_000 + txn
            writes[uid] = record
        script.append(writes)
    return script


def _probe_uid(records: Dict[int, Dict[str, Any]]) -> int:
    """A uid no scripted transaction touches (the re-route write)."""
    return sorted(records)[-1]


def _deployment(
    records: Dict[int, Dict[str, Any]],
    spec: FailoverWorkload,
    vfs: FaultInjectingVFS,
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[ReplicationGroup, ReplicaRouter]:
    group = ReplicationGroup(
        ReplicationConfig(
            replicas=spec.replicas,
            apply_lag_seconds=spec.apply_lag_seconds,
        ),
        instrumentation=instrumentation,
        vfs=vfs,
    )
    group.load_records(records)
    router = ReplicaRouter(group, instrumentation=instrumentation)
    return group, router


@dataclasses.dataclass
class _Cell:
    """One crash point's outcome."""

    op: int
    torn: bool
    acked_txns: int
    inflight_logged: bool
    applied_lsns: List[int]
    promoted_index: Optional[int]
    violation: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _drive(
    router: ReplicaRouter,
    script: List[Dict[int, Dict[str, Any]]],
) -> Tuple[Dict[int, int], Dict[int, int], Optional[str]]:
    """Run the scripted transactions until done or the primary dies.

    Returns ``(acked, inflight, violation)``: the expected marker per
    uid for acknowledged transactions, the markers of the transaction
    in flight when the crash fired (empty on a clean run), and any
    read-your-writes violation observed *before* the crash.
    """
    acked: Dict[int, int] = {}
    inflight: Dict[int, int] = {}
    for writes in script:
        inflight = {uid: record[_MARK] for uid, record in writes.items()}
        router.commit_batch(writes, {})
        acked.update(inflight)
        inflight = {}
        for uid, value in list(acked.items()):
            seen = router.fetch(uid)[_MARK]
            if seen != value:
                return acked, inflight, (
                    f"read-your-writes: uid {uid} read {seen}, "
                    f"expected {value}"
                )
    return acked, inflight, None


def _check_promotion(
    group: ReplicationGroup,
    router: ReplicaRouter,
    records: Dict[int, Dict[str, Any]],
    acked: Dict[int, int],
    inflight: Dict[int, int],
) -> Tuple[bool, Optional[str]]:
    """Promote and verify election, durability, atomicity, re-route.

    Returns ``(inflight_logged, violation)`` — whether the in-flight
    transaction survived complete (legal when the crash hit at or
    after its durability point) and the first violated invariant.
    """
    new_primary = group.promote()
    index = group.promoted_index
    lsns = group.applied_lsns
    if index is None or lsns[index] != max(lsns):
        return False, (
            f"election: promoted replica {index} at LSN "
            f"{None if index is None else lsns[index]}, "
            f"group LSNs {lsns}"
        )
    state = new_primary.export_records()
    for uid, value in acked.items():
        seen = state.get(uid, {}).get(_MARK)
        if seen != value:
            return False, (
                f"durability: acked uid {uid} shows {seen}, "
                f"expected {value}"
            )
    applied = sum(
        1 for uid, value in inflight.items()
        if state.get(uid, {}).get(_MARK) == value
    )
    if inflight and applied not in (0, len(inflight)):
        return False, (
            f"atomicity: in-flight transaction applied {applied} of "
            f"{len(inflight)} writes"
        )
    inflight_logged = bool(inflight) and applied == len(inflight)
    # Re-route: the same router now serves reads and writes from the
    # promoted primary (its session token resets on the generation
    # bump; no replica is ever eligible after failover).
    for uid, value in acked.items():
        seen = router.fetch(uid)[_MARK]
        if seen != value:
            return inflight_logged, (
                f"re-route read: uid {uid} read {seen}, expected {value}"
            )
    probe = _probe_uid(records)
    record = dict(records[probe])
    record[_MARK] = _PROBE_VALUE
    router.commit_batch({probe: record}, {})
    seen = router.fetch(probe)[_MARK]
    if seen != _PROBE_VALUE:
        return inflight_logged, (
            f"re-route write: probe uid {probe} read {seen} after a "
            f"post-failover commit"
        )
    return inflight_logged, None


def _run_cell(
    records: Dict[int, Dict[str, Any]],
    spec: FailoverWorkload,
    op: int,
    torn: bool,
    instrumentation: Optional[Instrumentation] = None,
) -> _Cell:
    vfs = FaultInjectingVFS(MemoryVFS(), seed=spec.seed)
    vfs.crash_at(op, torn=torn)
    group, router = _deployment(records, spec, vfs, instrumentation)
    script = _script_writes(records, spec)
    violation: Optional[str] = None
    acked: Dict[int, int] = {}
    inflight: Dict[int, int] = {}
    crashed = False
    try:
        acked, inflight, violation = _drive(router, script)
    except SimulatedCrash:
        crashed = True
        acked, inflight = _partial_progress(router, script)
    if not crashed and violation is None:
        violation = f"crash point {op} never fired"
    inflight_logged = False
    if violation is None:
        inflight_logged, violation = _check_promotion(
            group, router, records, acked, inflight
        )
    return _Cell(
        op=op,
        torn=torn,
        acked_txns=len(acked) // 2,
        inflight_logged=inflight_logged,
        applied_lsns=group.applied_lsns,
        promoted_index=group.promoted_index,
        violation=violation,
    )


def _partial_progress(
    router: ReplicaRouter,
    script: List[Dict[int, Dict[str, Any]]],
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Reconstruct acked/in-flight sets after a crash interrupted
    :func:`_drive` (the exception unwound its local state).

    The session token counts acked commits exactly: every scripted
    commit advances it by one LSN, and the crash killed the first
    unacked one.
    """
    acked_count = router.session_lsn
    acked: Dict[int, int] = {}
    for writes in script[:acked_count]:
        for uid, record in writes.items():
            acked[uid] = record[_MARK]
    inflight: Dict[int, int] = {}
    if acked_count < len(script):
        inflight = {
            uid: record[_MARK]
            for uid, record in script[acked_count].items()
        }
    return acked, inflight


def run_failover_drill(
    workload: Optional[FailoverWorkload] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the full crash matrix; return the results document.

    A counting pre-pass sizes the matrix: it drives the scripted
    transactions with no fault scheduled and records which mutating
    I/O operations belong to the commit window, then one cell crashes
    at each (clean and torn alternating).  With ``trace_path`` the
    last cell re-runs under live instrumentation and its span timeline
    — including the ``replication.failover`` election span — is
    exported as a Chrome trace.
    """
    spec = workload or FailoverWorkload()
    records = _base_records(spec.level, spec.seed)
    script = _script_writes(records, spec)

    counter = FaultInjectingVFS(MemoryVFS(), seed=spec.seed)
    group, router = _deployment(records, spec, counter)
    first_op = counter.mutation_ops + 1
    _drive(router, script)
    last_op = counter.mutation_ops

    cells: List[_Cell] = []
    for op in range(first_op, last_op + 1):
        cells.append(_run_cell(records, spec, op, torn=(op % 2 == 0)))

    trace_violation = _export_trace(records, spec, last_op, trace_path)
    violations = [
        f"op {cell.op} ({'torn' if cell.torn else 'clean'}): "
        f"{cell.violation}"
        for cell in cells
        if cell.violation
    ]
    if trace_violation:
        violations.append(trace_violation)
    return {
        "benchmark": "replica-failover",
        "workload": dataclasses.asdict(spec),
        "crash_points_tested": len(cells),
        "violation_count": len(violations),
        "violations": violations,
        "cells": [cell.to_dict() for cell in cells],
        "provenance": provenance(**dataclasses.asdict(spec)),
    }


def _export_trace(
    records: Dict[int, Dict[str, Any]],
    spec: FailoverWorkload,
    op: int,
    trace_path: Optional[str],
) -> Optional[str]:
    """Re-run one cell instrumented; write its Chrome trace.

    Returns a violation string if the failover gap span is missing
    from the recorded timeline (the trace is the acceptance artifact:
    the election must be visible as a named span).
    """
    if trace_path is None:
        return None
    from repro.obs.traceexport import write_chrome_trace

    instr = Instrumentation()
    cell = _run_cell(records, spec, op, torn=False, instrumentation=instr)
    spans = [record.name for record in instr.spans.records()]
    lane_metadata = {
        "primary": {"role": "primary", "replicas": spec.replicas},
    }
    for index in range(spec.replicas):
        lane_metadata[f"replica{index}"] = {
            "role": "replica",
            "replicas": spec.replicas,
        }
    write_chrome_trace(
        instr,
        trace_path,
        process_name="failover drill",
        server_name="replication group",
        lane_metadata=lane_metadata,
    )
    if "replication.failover" not in spans:
        return "trace: no replication.failover span recorded"
    if cell.violation:
        return f"trace cell: {cell.violation}"
    return None


def write_failover_bench(
    out_path: str,
    workload: Optional[FailoverWorkload] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the drill and write the document as JSON."""
    document = run_failover_drill(workload, trace_path=trace_path)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_summary(document: Dict[str, Any]) -> str:
    """Human-readable drill summary (the CLI prints this)."""
    lines = [
        "replica failover drill: "
        f"{document['crash_points_tested']} crash points, "
        f"{document['workload']['replicas']} replicas, "
        f"{document['workload']['transactions']} transactions",
    ]
    logged = sum(1 for c in document["cells"] if c["inflight_logged"])
    torn = sum(1 for c in document["cells"] if c["torn"])
    lines.append(
        f"  {torn} torn-write cells; in-flight transaction survived "
        f"complete in {logged} cells (crash at/after its durability "
        "point), fully absent in the rest"
    )
    for cell in document["cells"]:
        if cell["violation"]:
            mode = "torn" if cell["torn"] else "clean"
            lines.append(
                f"  VIOLATION op {cell['op']} ({mode}): {cell['violation']}"
            )
    if document["violation_count"] == 0:
        lines.append(
            "  all invariants held: election, durability, atomicity, "
            "re-route"
        )
    else:
        lines.append(f"  {document['violation_count']} VIOLATION(S)")
    return "\n".join(lines)
