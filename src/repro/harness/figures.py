"""Plain-text figures for benchmark results.

The companion results report would plot these; a terminal-first
reproduction renders them as horizontal ASCII bar charts.  Three
figure shapes cover the stories the data tells:

* :func:`cold_warm_figure` — one backend, cold vs warm bars per
  operation (the section 5.3 protocol's point);
* :func:`backend_figure` — one operation across backends;
* :func:`bar_chart` — the generic renderer, reusable for ablation and
  multi-user series.

Bars use a logarithmic scale by default: benchmark times span four
orders of magnitude, and linear bars would flatten every story into
"client/server is slow".
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.harness.results import ResultSet

#: Glyph used for bar bodies.
_BAR = "█"
_HALF = "▌"


def _scaled_length(value: float, minimum: float, maximum: float,
                   width: int, logarithmic: bool) -> int:
    if value <= 0 or maximum <= 0:
        return 0
    if not logarithmic:
        return max(1, round(width * value / maximum))
    if maximum == minimum:
        return width
    low = math.log10(max(minimum, 1e-9))
    high = math.log10(maximum)
    if high == low:
        return width
    fraction = (math.log10(max(value, 1e-9)) - low) / (high - low)
    return max(1, round(width * max(0.0, min(fraction, 1.0))))


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    title: str,
    unit: str = "ms/node",
    width: int = 40,
    logarithmic: bool = True,
) -> str:
    """Render labelled values as a horizontal bar chart.

    Args:
        rows: (label, value) pairs, rendered in the given order.
        title: chart heading.
        unit: printed after each value.
        width: bar area width in characters.
        logarithmic: scale bars by log10 (default; see module note).

    Returns:
        The chart as a multi-line string.
    """
    if not rows:
        return f"{title}\n(no data)"
    label_width = max(len(label) for label, _v in rows)
    values = [value for _label, value in rows if value > 0]
    minimum = min(values) if values else 0.0
    maximum = max(values) if values else 0.0
    scale_note = "log scale" if logarithmic else "linear scale"
    lines = [f"{title}  ({scale_note})"]
    for label, value in rows:
        length = _scaled_length(value, minimum, maximum, width, logarithmic)
        bar = _BAR * length if length else _HALF
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} "
            f"{value:10.4f} {unit}"
        )
    return "\n".join(lines)


def cold_warm_figure(
    results: ResultSet,
    backend: str,
    level: Optional[int] = None,
    width: int = 40,
) -> str:
    """Cold and warm bars per operation for one backend."""
    subset = results.select(backend=backend, level=level)
    if len(subset) == 0:
        return f"cold/warm, backend {backend}\n(no data)"
    rows: List[Tuple[str, float]] = []
    for op_id in subset.op_ids:
        cell = list(subset.select(op_id=op_id))[0]
        rows.append((f"{op_id} cold", cell.cold.mean))
        rows.append((f"{op_id} warm", cell.warm.mean))
    return bar_chart(
        rows,
        title=f"cold vs warm, backend {backend}"
        + (f", level {level}" if level is not None else ""),
        width=width,
    )


def backend_figure(
    results: ResultSet,
    op_id: str,
    temperature: str = "cold",
    level: Optional[int] = None,
    width: int = 40,
) -> str:
    """One operation across every backend (cold or warm means)."""
    if temperature not in ("cold", "warm"):
        raise ValueError("temperature must be 'cold' or 'warm'")
    subset = results.select(op_id=op_id, level=level)
    if len(subset) == 0:
        return f"op {op_id}\n(no data)"
    rows = []
    op_name = list(subset)[0].op_name
    for backend in subset.backends:
        cell = list(subset.select(backend=backend))[0]
        stats = cell.cold if temperature == "cold" else cell.warm
        rows.append((backend, stats.mean))
    return bar_chart(
        rows,
        title=f"op {op_id} {op_name}, {temperature} run",
        width=width,
    )


def speedup_figure(
    results: ResultSet, level: Optional[int] = None, width: int = 40
) -> str:
    """Warm-over-cold speedup per backend, averaged over operations."""
    subset = results.select(level=level)
    rows = []
    for backend in subset.backends:
        cells = list(subset.select(backend=backend))
        if not cells:
            continue
        speedups = [c.warm_speedup for c in cells if c.warm.mean > 0]
        if speedups:
            geometric = math.exp(
                sum(math.log(max(s, 1e-9)) for s in speedups) / len(speedups)
            )
            rows.append((backend, geometric))
    return bar_chart(
        rows,
        title="geometric-mean warm speedup per backend",
        unit="x",
        width=width,
    )
