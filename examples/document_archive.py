#!/usr/bin/env python3
"""A document archive: the paper's motivating hypertext application.

Section 5.2 gives the semantic reading of the test structure: "an
archive with 5 folders with 5 documents in each folder; each document
contains 5 chapters with 5 sections with 5 subsections with 5 text or
bit-map nodes".  This example uses the persistent OODB backend the way
a hypertext editor would:

* build the archive (a real file on disk, with clustering along the
  document hierarchy);
* produce a table of contents for one document via the pre-order
  closure, and store it back into the database;
* follow cross-reference links (the weighted association);
* edit a section's text and a figure's bitmap;
* find sections by attribute with the R12 ad-hoc query language;
* close and reopen the file, demonstrating durability.

Run:  python examples/document_archive.py
"""

import os
import random
import tempfile

from repro import DatabaseGenerator, HyperModelConfig, Operations
from repro.backends.oodb import OodbDatabase
from repro.query import execute


def describe(db, ref, depth):
    uid = db.get_attribute(ref, "uniqueId")
    kind = db.kind_of(ref).value
    return f"{'  ' * depth}- node {uid} ({kind})"


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="hypermodel-archive-")
    path = os.path.join(workdir, "archive.hmdb")
    config = HyperModelConfig(levels=4, seed=99)  # leaves are subsections

    with OodbDatabase(path) as db:
        section_uid = _work(db, path, config)

    # --- Durability ----------------------------------------------------
    with OodbDatabase(path) as reopened:
        toc_again = reopened.load_node_list("toc:document-1")
        edited = reopened.get_text(reopened.lookup(section_uid))
        assert "version-2" in edited
        print(f"\nreopened the file: table of contents has {len(toc_again)} "
              f"entries and the text edit survived — durability holds")


def _work(db, path: str, config: HyperModelConfig) -> int:
    print(f"building the archive into {path} ...")
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    print(f"  {gen.total_nodes} nodes committed, "
          f"file size {os.path.getsize(path):,} bytes\n")

    ops = Operations(db, config)
    rng = random.Random(12)

    # --- Browse: folders and documents -------------------------------
    root = db.lookup(gen.root_uid)
    folders = db.children(root)
    print(f"archive has {len(folders)} folders; opening folder 1:")
    documents = db.children(folders[0])
    for document in documents:
        chapters = len(db.children(document))
        print(f"  document {db.get_attribute(document, 'uniqueId')}: "
              f"{chapters} chapters")

    # --- Table of contents via the pre-order closure ------------------
    document = documents[0]
    toc = ops.closure_1n(document)
    print(f"\ntable of contents of document "
          f"{db.get_attribute(document, 'uniqueId')}: {len(toc)} entries")
    for entry in toc[:8]:
        print(describe(db, entry, 1))
    print("    ...")
    db.store_node_list("toc:document-1", toc)
    db.commit()
    print("  (stored in the database as 'toc:document-1')")

    # --- Follow a cross-reference chain ------------------------------
    print("\nfollowing cross-references to depth 5 "
          "(op 18 accumulates link weights):")
    start = db.lookup(gen.random_uid_at_level(rng, 3))
    for node, distance in ops.closure_mnatt_linksum(start, depth=5):
        print(f"  -> node {db.get_attribute(node, 'uniqueId')} "
              f"(distance {distance})")

    # --- Edit a subsection's text and a figure ------------------------
    section = db.lookup(gen.random_text_uid(rng))
    print(f"\nediting text node {db.get_attribute(section, 'uniqueId')}:")
    print(f"  before: {db.get_text(section)[:50]}...")
    ops.text_node_edit(section)
    print(f"  after:  {db.get_text(section)[:50]}...")

    figure = db.lookup(gen.random_form_uid(rng))
    ops.form_node_edit(figure)
    bitmap = db.get_bitmap(figure)
    print(f"edited figure {db.get_attribute(figure, 'uniqueId')}: "
          f"{bitmap.width}x{bitmap.height}, "
          f"{bitmap.popcount()} black pixels after the invert")
    db.commit()

    # --- Ad-hoc query (R12) -------------------------------------------
    result = execute(db, "find text where hundred between 90 and 100")
    print(f"\nquery 'find text where hundred between 90 and 100' "
          f"[{result.plan}]: {len(result)} sections")

    return db.get_attribute(section, "uniqueId")


if __name__ == "__main__":
    main()
