#!/usr/bin/env python3
"""Run the full benchmark grid and print the paper-style tables.

This is the reproduction of the paper's measurement campaign in one
script: for every backend and level, build the test database (timing
creation per section 5.3), run each of the twenty operations through
the cold/warm protocol, and print per-backend operation tables, the
cross-backend comparison, the warm-speedup table and the creation
table.

Defaults are sized for a laptop run (level 4, 10 repetitions); pass
``--level 5 --repetitions 50`` for a paper-scale run, or set the
``HYPERMODEL_LEVEL`` environment variable.

Run:  python examples/benchmark_comparison.py [--level N]
      [--backends memory,sqlite,oodb,clientserver] [--repetitions N]
      [--save results.json]
"""

import argparse
import os

from repro.harness import BenchmarkRunner, RunnerConfig
from repro.harness.figures import backend_figure, speedup_figure
from repro.harness.report import (
    backend_comparison_table,
    creation_table,
    operation_table,
    speedup_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--level",
        type=int,
        default=int(os.environ.get("HYPERMODEL_LEVEL", "4")),
    )
    parser.add_argument(
        "--backends", default="memory,sqlite,oodb,clientserver"
    )
    parser.add_argument("--repetitions", type=int, default=10)
    parser.add_argument("--save", default=None)
    args = parser.parse_args()

    config = RunnerConfig(
        backends=args.backends.split(","),
        levels=[args.level],
        repetitions=args.repetitions,
    )
    print(
        f"running {len(config.backends)} backends x level {args.level} x "
        f"20 operations, {args.repetitions} repetitions per cold/warm run"
    )
    print("(databases build first; the oodb backend takes the longest)\n")
    with BenchmarkRunner(config) as runner:
        results, creation = runner.run()

        print(
            creation_table(
                {
                    backend: phases
                    for (backend, _level), phases in creation.items()
                },
                level=args.level,
            )
        )
        print()
        for backend in results.backends:
            print(operation_table(results, backend))
            print()
        print(backend_comparison_table(results, args.level, "cold"))
        print()
        print(backend_comparison_table(results, args.level, "warm"))
        print()
        for backend in results.backends:
            print(speedup_table(results, backend))
            print()
        print(backend_figure(results, "10", "cold", level=args.level))
        print()
        print(speedup_figure(results, level=args.level))
        print()
        if args.save:
            results.save(args.save)
            print(f"results saved to {args.save}")


if __name__ == "__main__":
    main()
