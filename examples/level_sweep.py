#!/usr/bin/env python3
"""Database-size scaling: the paper's level dimension.

The paper's tables have one column per test-database level (4, 5, 6 —
781, 3 906 and 19 531 nodes): per-node times that stay flat scale,
times that grow are size-sensitive, and the columns can reveal
crossovers between systems.  This example sweeps two backends across
levels, prints the scaling tables and reports any crossovers.

Defaults stay small (levels 3 and 4, memory + sqlite); a paper-scale
sweep is ``--levels 4,5,6 --backends sqlite,oodb`` and a pot of coffee.

Run:  python examples/level_sweep.py [--levels 3,4] [--backends memory,sqlite]
"""

import argparse
import tempfile

from repro.harness.results import ResultSet
from repro.harness.sweep import LevelSweep, find_crossovers, scaling_table

#: A representative operation slice: one per major category.
DEFAULT_OPS = ["01", "03", "05A", "09", "10", "16"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", default="3,4")
    parser.add_argument("--backends", default="memory,sqlite")
    parser.add_argument("--repetitions", type=int, default=5)
    args = parser.parse_args()

    levels = [int(level) for level in args.levels.split(",")]
    backends = args.backends.split(",")
    workdir = tempfile.mkdtemp(prefix="hypermodel-sweep-")

    combined = ResultSet()
    for backend in backends:
        print(f"sweeping {backend} across levels {levels} ...")
        results = LevelSweep(
            backend=backend,
            levels=levels,
            op_ids=DEFAULT_OPS,
            repetitions=args.repetitions,
            workdir=workdir,
        ).run()
        combined.extend(results)
        print()
        print(scaling_table(results, backend, "cold"))
        print()

    if len(backends) >= 2:
        flips = find_crossovers(combined, backends[0], backends[1], "cold")
        reported = {op: level for op, level in flips.items() if level}
        if reported:
            print("crossovers (first level where the faster backend flips):")
            for op_id, level in reported.items():
                print(f"  op {op_id}: at level {level}")
        else:
            print(
                f"no crossovers: one of {backends[0]}/{backends[1]} wins "
                "each operation at every measured level"
            )


if __name__ == "__main__":
    main()
