#!/usr/bin/env python3
"""The section 6.8 extension experiments: versions, schema, access.

Three capabilities the paper lists as extension operations, exercised
on real databases:

* **R5 versions** — edit a text node several times on a versioned
  store, then retrieve its previous version and a snapshot of the
  state at an earlier time-point;
* **R4 schema evolution** — add a ``DrawNode`` class and a new
  attribute to ``TextNode`` at run time, with existing objects
  upgraded lazily;
* **R11 access control** — public read on one document structure,
  public write on another, a hypertext link between them.

Run:  python examples/versions_and_access.py
"""

import os
import tempfile

from repro import DatabaseGenerator, HyperModelConfig, Operations
from repro.access import PUBLIC, AccessController, GuardedDatabase, Permission
from repro.backends.memory import MemoryDatabase
from repro.backends.oodb import OodbDatabase
from repro.core.model import LinkAttributes
from repro.engine.catalog import FieldDefinition
from repro.errors import AccessDeniedError


def versions_demo(workdir: str) -> None:
    print("=== R5: versions and time-point snapshots ===")
    with OodbDatabase(
        os.path.join(workdir, "versions.hmdb"), versioned=True
    ) as db:
        config = HyperModelConfig(levels=2, seed=4)
        gen = DatabaseGenerator(config).generate(db)
        db.commit()

        uid = gen.text_uids[0]
        ref = db.lookup(uid)
        ops = Operations(db, config)
        original = db.get_text(ref)
        snapshot_ts = db.store.commit_timestamp
        print(f"node {uid} at t={snapshot_ts}: {original[:40]}...")

        for round_number in range(3):
            ops.text_node_edit(ref)
            db.commit()
            print(f"edit {round_number + 1} committed at "
                  f"t={db.store.commit_timestamp}")

        previous = db.store.previous_version(int(ref))
        snapshot = db.store.version_at(int(ref), snapshot_ts)
        history = db.store.version_chain(int(ref)).all()
        print(f"previous version text: {previous['text'][:40]}...")
        print(f"snapshot at t={snapshot_ts} equals the original: "
              f"{snapshot['text'] == original}")
        print(f"history depth: {len(history)} preserved versions\n")


def schema_demo(workdir: str) -> None:
    print("=== R4: dynamic schema modification ===")
    with OodbDatabase(os.path.join(workdir, "schema.hmdb")) as db:
        config = HyperModelConfig(levels=2, seed=4)
        gen = DatabaseGenerator(config).generate(db)
        db.commit()

        # Add the DrawNode type the requirement sketches.
        db.store.define_class(
            "DrawNode",
            [
                FieldDefinition("circles", default=0),
                FieldDefinition("rectangles", default=0),
                FieldDefinition("ellipses", default=0),
            ],
            base="Node",
        )
        drawing = db.store.new(
            "DrawNode",
            {"uniqueId": 100_000, "ten": 1, "hundred": 1, "million": 1,
             "circles": 2, "rectangles": 1, "ellipses": 4},
        )
        db.commit()
        print(f"added DrawNode class and created instance oid={drawing}: "
              f"{db.store.get(drawing)['ellipses']} ellipses")

        # Add an attribute to an existing type: old objects upgrade lazily.
        db.store.add_field(
            "TextNode", FieldDefinition("language", default="en")
        )
        state = db.store.get(int(db.lookup(gen.text_uids[0])))
        print(f"added TextNode.language; a pre-existing node reads "
              f"language={state['language']!r} without any rewrite\n")


def access_demo() -> None:
    print("=== R11: per-document access policies ===")
    with MemoryDatabase() as inner:
        config = HyperModelConfig(levels=3, seed=4)
        gen = DatabaseGenerator(config).generate(inner)

        controller = AccessController(inner)
        root = inner.lookup(gen.root_uid)
        published_doc, draft_doc = inner.children(root)[:2]
        controller.set_policy(
            inner.get_attribute(published_doc, "uniqueId"),
            PUBLIC,
            Permission.READ,
        )
        controller.set_policy(
            inner.get_attribute(draft_doc, "uniqueId"),
            PUBLIC,
            Permission.READ_WRITE,
        )
        db = GuardedDatabase(inner, controller, principal="visitor")
        print("document 1 is public-read, document 2 is public-write")

        section = inner.children(published_doc)[0]
        print(f"visitor reads the published document: "
              f"ten={db.get_attribute(section, 'ten')}")
        try:
            db.set_attribute(section, "ten", 5)
        except AccessDeniedError as error:
            print(f"visitor cannot edit it: {error}")

        draft_section = inner.children(draft_doc)[0]
        db.set_attribute(draft_section, "ten", 5)
        print("visitor edits the draft document freely")

        db.add_reference(draft_section, section, LinkAttributes(1, 1))
        print("and links from the draft into the read-only document — "
              "links across protection boundaries keep working")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="hypermodel-ext-")
    versions_demo(workdir)
    schema_demo(workdir)
    access_demo()


if __name__ == "__main__":
    main()
