#!/usr/bin/env python3
"""Multi-user cooperation: workspaces, conflicts, optimistic control.

Requirement R9 wants *cooperation* support: two users updating
different nodes of the same structure, with private work becoming
shareable on demand.  Section 7 reports the authors' multi-user
experiments and the difficulty optimistic schemes create.  This example
shows all three faces:

1. the cooperative success case (disjoint check-outs, everything
   publishes);
2. a check-out conflict (two users want the same node — one is told
   immediately, rather than discovering it at commit);
3. the optimistic alternative on the engine: both users read the same
   object, the first committer wins, the second gets a
   ``ConflictError`` at validation — exactly the behaviour that made
   the paper's authors call conflicting update workloads "an area for
   future work".

Run:  python examples/multiuser_collaboration.py
"""

import os
import tempfile

from repro import DatabaseGenerator, HyperModelConfig
from repro.backends.memory import MemoryDatabase
from repro.concurrency import (
    SharedStore,
    run_conflicting_scenario,
    run_cooperative_scenario,
)
from repro.concurrency.optimistic import OptimisticCoordinator
from repro.engine import ObjectStore
from repro.engine.catalog import FieldDefinition
from repro.errors import CheckOutConflictError, ConflictError


def cooperative_editing() -> None:
    print("=== 1. cooperative workspaces (R9) ===")
    with MemoryDatabase() as db:
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(db)

        result = run_cooperative_scenario(db, gen, users=2, nodes_per_user=3)
        print(f"2 users each edited 3 different text nodes of one structure")
        print(f"conflicts: {result.conflicts}, "
              f"nodes published: {result.total_published}")
        for user, published in enumerate(result.published):
            print(f"  user-{user} made nodes {published} shareable")

        conflict = run_conflicting_scenario(db, gen)
        print(f"\nsame node contended: {conflict.conflicts} check-out conflict "
              f"(reported to the user immediately), winner published "
              f"{conflict.total_published} node")


def manual_workspace_walkthrough() -> None:
    print("\n=== 2. a check-out conflict, step by step ===")
    with MemoryDatabase() as db:
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=6)).generate(db)
        shared = SharedStore(db)
        alice = shared.workspace("alice")
        bob = shared.workspace("bob")

        uid = gen.text_uids[0]
        alice.check_out(uid)
        print(f"alice checked out node {uid}")
        try:
            bob.check_out(uid)
        except CheckOutConflictError as error:
            print(f"bob is refused: {error}")
        alice.set_text(uid, "version1 alices private draft version1 end version1")
        print(f"alice edits privately; shared text unchanged: "
              f"{db.get_text(db.lookup(uid))[:30]}...")
        alice.check_in()
        print(f"alice checks in; shared text now: "
              f"{db.get_text(db.lookup(uid))[:30]}...")
        bob.check_out(uid)
        print("bob's retry succeeds after alice's check-in")
        bob.abandon()


def optimistic_control() -> None:
    print("\n=== 3. optimistic concurrency on the engine (R8) ===")
    workdir = tempfile.mkdtemp(prefix="hypermodel-occ-")
    with ObjectStore(
        os.path.join(workdir, "occ.hmdb"), sync_commits=False
    ) as store:
        _optimistic_scenario(store)


def _optimistic_scenario(store: ObjectStore) -> None:
    store.define_class("Section", [FieldDefinition("body", default="")])
    section = store.new("Section", {"body": "draft 0"})
    store.commit()

    coordinator = OptimisticCoordinator(store)
    alice_txn = coordinator.begin()
    bob_txn = coordinator.begin()
    alice_txn.read(section)
    bob_txn.read(section)
    print("alice and bob both read the section optimistically")

    alice_txn.write(section, {"body": "alice's revision"})
    alice_txn.commit()
    print("alice commits first: validation passes")

    bob_txn.write(section, {"body": "bob's revision"})
    try:
        bob_txn.commit()
    except ConflictError as error:
        print(f"bob's validation fails: {error}")
    print(f"final body: {store.get(section)['body']!r}; "
          f"conflict rate {coordinator.conflict_rate:.0%}")


def main() -> None:
    cooperative_editing()
    manual_workspace_walkthrough()
    optimistic_control()


if __name__ == "__main__":
    main()
