#!/usr/bin/env python3
"""Quickstart: generate a HyperModel test database and run operations.

This is the five-minute tour: build the paper's level-4 test structure
(781 nodes) on the in-memory backend, verify it against the section 5.2
contract, then run one operation from each of the seven categories of
section 6 and print what came back.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    HyperModelConfig,
    DatabaseGenerator,
    Operations,
    verify_database,
)
from repro.backends import create_backend


def main() -> None:
    config = HyperModelConfig(levels=4, seed=2026)
    print(f"HyperModel level-{config.levels} database: "
          f"{config.total_nodes} nodes "
          f"({config.text_node_count} text, {config.form_node_count} form), "
          f"~{config.estimated_size_bytes() / 1e6:.2f} MB")

    # Backends are context managers: opened on entry, committed and
    # closed on exit (aborted first if the block raises).
    with create_backend("memory") as db:
        _tour(db, config)
    print("\ndone — see examples/benchmark_comparison.py for the full grid")


def _tour(db, config: HyperModelConfig) -> None:
    gen = DatabaseGenerator(config).generate(db)
    verify_database(db, gen).raise_if_failed()
    print("generated and verified against the section 5.2 contract\n")

    ops = Operations(db, config)
    rng = random.Random(7)

    # 6.1 Name lookup: key value -> hundred attribute.
    uid = gen.random_uid(rng)
    print(f"op 01 nameLookup({uid})            -> hundred = {ops.name_lookup(uid)}")

    # 6.2 Range lookup, 10% selectivity on hundred.
    found = ops.range_lookup_hundred(41)
    print(f"op 03 rangeLookupHundred(41..50)   -> {len(found)} nodes")

    # 6.3 Group lookup: the ordered children of an internal node.
    internal = db.lookup(gen.random_internal_uid(rng))
    children = ops.group_lookup_1n(internal)
    child_uids = [db.get_attribute(c, 'uniqueId') for c in children]
    print(f"op 05A groupLookup1N               -> children {child_uids}")

    # 6.4 Reference lookup: inverse traversal.
    node = db.lookup(gen.random_non_root_uid(rng))
    (parent,) = ops.ref_lookup_1n(node)
    print(f"op 07A refLookup1N                 -> parent uid "
          f"{db.get_attribute(parent, 'uniqueId')}")

    # 6.4.1 Sequential scan.
    print(f"op 09 seqScan                      -> visited {ops.seq_scan()} nodes")

    # 6.5 Closure traversal from a level-3 node (6 nodes at level 4).
    start = db.lookup(gen.random_uid_at_level(rng, 3))
    closure = ops.closure_1n(start)
    print(f"op 10 closure1N                    -> pre-order list of "
          f"{len(closure)} nodes")
    db.store_node_list("table-of-contents", closure)
    print(f"      stored as a node list, reloaded: "
          f"{len(db.load_node_list('table-of-contents'))} refs")

    # 6.6 A derived closure: sum of hundred over the subtree.
    print(f"op 11 closure1NAttSum              -> {ops.closure_1n_att_sum(start)}")

    # 6.7 Editing: version1 -> version-2 and back.
    text_ref = db.lookup(gen.random_text_uid(rng))
    before = db.get_text(text_ref)[:40]
    ops.text_node_edit(text_ref)
    after = db.get_text(text_ref)[:40]
    ops.text_node_edit(text_ref)  # restore
    print(f"op 16 textNodeEdit                 -> '{before}...'")
    print(f"                                   => '{after}...'")


if __name__ == "__main__":
    main()
